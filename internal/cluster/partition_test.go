package cluster

import (
	"testing"
	"time"

	"prdma/internal/rpc"
)

func partParams() Params {
	p := DefaultParams()
	p.Shards = 2
	p.Replicas = 2
	p.PoolSize = 2
	p.Gateways = 2
	p.Objects = 256
	p.ObjSize = 64
	return p
}

// runPart builds a partitioned cluster at the given worker count, drives l,
// and returns (result, consistency error).
func runPart(t *testing.T, workers int, l Load) (*PLoadResult, error) {
	t.Helper()
	c, err := NewPartitioned(workers, partParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunLoad(l)
	if err != nil {
		t.Fatal(err)
	}
	return res, c.CheckConsistency()
}

// TestPartitionedClusterDeterminism pins the tentpole contract at the top of
// the stack: the full partitioned KV cluster — gateways, replicated durable
// connections, consistent-hash routing — produces an identical merged result
// at 1, 2 and 4 workers, stays consistent, and verifies every read.
func TestPartitionedClusterDeterminism(t *testing.T) {
	l := Load{Clients: 8, Ops: 300, ReadFrac: 0.5, Verify: true, Seed: 42}
	base, cerr := runPart(t, 1, l)
	if cerr != nil {
		t.Fatalf("workers=1: consistency: %v", cerr)
	}
	if base.Errors != 0 || base.BadReads != 0 {
		t.Fatalf("workers=1: errors=%d badReads=%d", base.Errors, base.BadReads)
	}
	if len(base.Samples) != l.Ops {
		t.Fatalf("workers=1: %d samples, want %d", len(base.Samples), l.Ops)
	}
	for _, workers := range []int{2, 4} {
		res, cerr := runPart(t, workers, l)
		if cerr != nil {
			t.Fatalf("workers=%d: consistency: %v", workers, cerr)
		}
		if res.Fingerprint() != base.Fingerprint() {
			t.Fatalf("workers=%d: fingerprint %x != workers=1 %x", workers, res.Fingerprint(), base.Fingerprint())
		}
	}
}

// TestPartitionedOpenLoopPopulation exercises the open-loop path with a
// logical population far above the worker count: the run completes, arrivals
// attribute to a wide slice of the population, the queue stays bounded, and
// worker counts again agree bit-for-bit.
func TestPartitionedOpenLoopPopulation(t *testing.T) {
	l := Load{
		Clients: 8, Ops: 400, ReadFrac: 0.5,
		OpenLoop: true, Rate: 5e5, LogicalClients: 100_000,
		Seed: 7,
	}
	base, cerr := runPart(t, 1, l)
	if cerr != nil {
		t.Fatalf("consistency: %v", cerr)
	}
	if base.Errors != 0 {
		t.Fatalf("errors=%d", base.Errors)
	}
	if len(base.Samples) != l.Ops {
		t.Fatalf("%d samples, want %d", len(base.Samples), l.Ops)
	}
	if base.DistinctClients < l.Ops/2 {
		t.Fatalf("only %d distinct logical clients over %d ops", base.DistinctClients, l.Ops)
	}
	if base.QueueHWM <= 0 || base.QueueHWM > l.Ops {
		t.Fatalf("queue high-water %d out of range", base.QueueHWM)
	}
	res2, _ := runPart(t, 2, l)
	if res2.Fingerprint() != base.Fingerprint() {
		t.Fatalf("workers=2 fingerprint diverged")
	}
}

// TestPartitionedAllDurableFamilies pins engine-mode parity at the cluster
// layer: every durable RPC family deploys partitioned, finishes the verified
// workload consistently, and stays worker-count deterministic. Non-durable
// families are still rejected — there is no persistence contract to check.
func TestPartitionedAllDurableFamilies(t *testing.T) {
	l := Load{Clients: 4, Ops: 120, ReadFrac: 0.3, Verify: true, Seed: 11}
	for _, kind := range []rpc.Kind{rpc.WFlushRPC, rpc.SFlushRPC, rpc.WRFlushRPC, rpc.SRFlushRPC} {
		t.Run(kind.String(), func(t *testing.T) {
			p := partParams()
			p.Kind = kind
			run := func(workers int) (*PLoadResult, error) {
				c, err := NewPartitioned(workers, p)
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.RunLoad(l)
				if err != nil {
					t.Fatal(err)
				}
				return res, c.CheckConsistency()
			}
			base, cerr := run(1)
			if cerr != nil {
				t.Fatalf("workers=1: consistency: %v", cerr)
			}
			if base.Errors != 0 || base.BadReads != 0 {
				t.Fatalf("workers=1: errors=%d badReads=%d", base.Errors, base.BadReads)
			}
			res, cerr := run(4)
			if cerr != nil {
				t.Fatalf("workers=4: consistency: %v", cerr)
			}
			if res.Fingerprint() != base.Fingerprint() {
				t.Fatalf("workers=4: fingerprint %x != workers=1 %x", res.Fingerprint(), base.Fingerprint())
			}
		})
	}
	p := partParams()
	p.Kind = rpc.FaRM
	if _, err := NewPartitioned(1, p); err == nil {
		t.Fatal("non-durable partitioned deployment did not error")
	}
}

// TestPartitionedFailoverRecovery crashes a replica at a window barrier under
// a controller-managed single-gateway deployment and drives it through
// detect, promote, resync, and readmission — asserting no acknowledged write
// is lost and the cluster returns to full health.
func TestPartitionedFailoverRecovery(t *testing.T) {
	p := partParams()
	p.Gateways = 1
	p.Replicas = 3
	c, err := NewPartitioned(2, p)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableAckAudit()
	ct, err := c.StartController()
	if err != nil {
		t.Fatal(err)
	}
	load, err := c.StartLoad(Load{Clients: 4, Ops: 200, ReadFrac: 0.3, Verify: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.RunWindows(40)
	c.Eng.Serialize()
	c.CrashReplica(0, 0)
	crashAt := c.Now()
	restarted := false
	horizon := crashAt.Add(100 * time.Millisecond)
	for !(load.Done() && c.Healthy()) && c.Now() < horizon {
		if !restarted && c.Now() >= crashAt.Add(c.P.Restart) {
			c.RestartReplica(0, 0)
			restarted = true
		}
		if c.Eng.RunWindows(16) == 0 {
			break
		}
	}
	ct.Stop()
	for c.Now() < horizon && c.Eng.RunWindows(256) != 0 {
	}
	c.Eng.Unserialize()
	res := load.Collect()
	if !load.Done() {
		t.Fatal("load never finished")
	}
	if !c.Healthy() {
		t.Fatal("cluster not healthy after recovery")
	}
	if res.Errors != 0 || res.BadReads != 0 {
		t.Fatalf("errors=%d badReads=%d", res.Errors, res.BadReads)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	grp := c.Groups[0]
	if grp.Failovers == 0 {
		t.Fatal("crash never detected")
	}
	if grp.Resyncs == 0 {
		t.Fatal("victim never readmitted")
	}
	var promoted, resyncDone bool
	for _, ev := range ct.Events {
		switch ev.Kind {
		case "promote":
			promoted = true
		case "resync-done":
			resyncDone = true
		}
	}
	if !promoted || !resyncDone {
		t.Fatalf("controller events missing promote/resync-done: %v", ct.Events)
	}
	c.Eng.Shutdown()
}

// TestPartitionedMatchesSerialSemantics sanity-checks the data plane against
// the serial cluster: same op mix, both end consistent with all reads
// verified (timings differ — the topologies are different — but semantics
// must not).
func TestPartitionedMatchesSerialSemantics(t *testing.T) {
	l := Load{Clients: 4, Ops: 200, ReadFrac: 0.3, Verify: true, Seed: 9}
	res, cerr := runPart(t, 2, l)
	if cerr != nil {
		t.Fatalf("partitioned consistency: %v", cerr)
	}
	if res.Errors != 0 || res.BadReads != 0 {
		t.Fatalf("partitioned: errors=%d badReads=%d", res.Errors, res.BadReads)
	}
	if res.Writes+res.Reads != l.Ops {
		t.Fatalf("partitioned: writes=%d reads=%d, want total %d", res.Writes, res.Reads, l.Ops)
	}
	if res.End <= 0 || res.Throughput() <= 0 {
		t.Fatalf("partitioned: degenerate timing end=%v", res.End)
	}
}
