package cluster

import (
	"testing"

	"prdma/internal/rpc"
)

func partParams() Params {
	p := DefaultParams()
	p.Shards = 2
	p.Replicas = 2
	p.PoolSize = 2
	p.Gateways = 2
	p.Objects = 256
	p.ObjSize = 64
	return p
}

// runPart builds a partitioned cluster at the given worker count, drives l,
// and returns (result, consistency error).
func runPart(t *testing.T, workers int, l Load) (*PLoadResult, error) {
	t.Helper()
	c, err := NewPartitioned(workers, partParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunLoad(l)
	if err != nil {
		t.Fatal(err)
	}
	return res, c.CheckConsistency()
}

// TestPartitionedClusterDeterminism pins the tentpole contract at the top of
// the stack: the full partitioned KV cluster — gateways, replicated durable
// connections, consistent-hash routing — produces an identical merged result
// at 1, 2 and 4 workers, stays consistent, and verifies every read.
func TestPartitionedClusterDeterminism(t *testing.T) {
	l := Load{Clients: 8, Ops: 300, ReadFrac: 0.5, Verify: true, Seed: 42}
	base, cerr := runPart(t, 1, l)
	if cerr != nil {
		t.Fatalf("workers=1: consistency: %v", cerr)
	}
	if base.Errors != 0 || base.BadReads != 0 {
		t.Fatalf("workers=1: errors=%d badReads=%d", base.Errors, base.BadReads)
	}
	if len(base.Samples) != l.Ops {
		t.Fatalf("workers=1: %d samples, want %d", len(base.Samples), l.Ops)
	}
	for _, workers := range []int{2, 4} {
		res, cerr := runPart(t, workers, l)
		if cerr != nil {
			t.Fatalf("workers=%d: consistency: %v", workers, cerr)
		}
		if res.Fingerprint() != base.Fingerprint() {
			t.Fatalf("workers=%d: fingerprint %x != workers=1 %x", workers, res.Fingerprint(), base.Fingerprint())
		}
	}
}

// TestPartitionedOpenLoopPopulation exercises the open-loop path with a
// logical population far above the worker count: the run completes, arrivals
// attribute to a wide slice of the population, the queue stays bounded, and
// worker counts again agree bit-for-bit.
func TestPartitionedOpenLoopPopulation(t *testing.T) {
	l := Load{
		Clients: 8, Ops: 400, ReadFrac: 0.5,
		OpenLoop: true, Rate: 5e5, LogicalClients: 100_000,
		Seed: 7,
	}
	base, cerr := runPart(t, 1, l)
	if cerr != nil {
		t.Fatalf("consistency: %v", cerr)
	}
	if base.Errors != 0 {
		t.Fatalf("errors=%d", base.Errors)
	}
	if len(base.Samples) != l.Ops {
		t.Fatalf("%d samples, want %d", len(base.Samples), l.Ops)
	}
	if base.DistinctClients < l.Ops/2 {
		t.Fatalf("only %d distinct logical clients over %d ops", base.DistinctClients, l.Ops)
	}
	if base.QueueHWM <= 0 || base.QueueHWM > l.Ops {
		t.Fatalf("queue high-water %d out of range", base.QueueHWM)
	}
	res2, _ := runPart(t, 2, l)
	if res2.Fingerprint() != base.Fingerprint() {
		t.Fatalf("workers=2 fingerprint diverged")
	}
}

// TestPartitionedRejectsNonWFlush pins the guard: partitioned deployments
// exist for WFlush-RPC only.
func TestPartitionedRejectsNonWFlush(t *testing.T) {
	p := partParams()
	p.Kind = rpc.SFlushRPC
	if _, err := NewPartitioned(1, p); err == nil {
		t.Fatal("SFlushRPC partitioned deployment did not error")
	}
}

// TestPartitionedMatchesSerialSemantics sanity-checks the data plane against
// the serial cluster: same op mix, both end consistent with all reads
// verified (timings differ — the topologies are different — but semantics
// must not).
func TestPartitionedMatchesSerialSemantics(t *testing.T) {
	l := Load{Clients: 4, Ops: 200, ReadFrac: 0.3, Verify: true, Seed: 9}
	res, cerr := runPart(t, 2, l)
	if cerr != nil {
		t.Fatalf("partitioned consistency: %v", cerr)
	}
	if res.Errors != 0 || res.BadReads != 0 {
		t.Fatalf("partitioned: errors=%d badReads=%d", res.Errors, res.BadReads)
	}
	if res.Writes+res.Reads != l.Ops {
		t.Fatalf("partitioned: writes=%d reads=%d, want total %d", res.Writes, res.Reads, l.Ops)
	}
	if res.End <= 0 || res.Throughput() <= 0 {
		t.Fatalf("partitioned: degenerate timing end=%v", res.End)
	}
}
