package cluster

import (
	"testing"
	"time"

	"prdma/internal/sim"
)

func quickParams() Params {
	p := DefaultParams()
	p.Shards = 2
	p.Replicas = 3
	p.PoolSize = 2
	p.Objects = 256
	p.ObjSize = 64
	return p
}

// TestClusterPutGetConverges drives a healthy cluster and checks every
// acknowledged write is byte-identical on all replicas once settled.
func TestClusterPutGetConverges(t *testing.T) {
	k := sim.New()
	c, err := New(k, quickParams())
	if err != nil {
		t.Fatal(err)
	}
	ct := c.StartController()
	var res *LoadResult
	k.Go("main", func(p *sim.Proc) {
		res, err = c.RunLoad(p, Load{Clients: 8, Ops: 400, ReadFrac: 0.5, Verify: true, Seed: 3})
		if err != nil {
			t.Error(err)
		}
		p.Sleep(2 * time.Millisecond) // engines apply
		ct.Stop()
	})
	k.Run()
	if res == nil || len(res.Samples) != 400 {
		t.Fatalf("samples: got %v", res)
	}
	if res.Errors != 0 || res.BadReads != 0 {
		t.Fatalf("errors=%d badReads=%d", res.Errors, res.BadReads)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("degenerate mix: %d writes %d reads", res.Writes, res.Reads)
	}
}

// TestClusterFailover crashes a shard primary mid-load: the controller must
// detect it, promote a survivor, resync the rejoiner, and no acknowledged
// write may be lost or diverge.
func TestClusterFailover(t *testing.T) {
	k := sim.New()
	p := quickParams()
	c, err := New(k, p)
	if err != nil {
		t.Fatal(err)
	}
	ct := c.StartController()
	var res *LoadResult
	k.Go("main", func(mp *sim.Proc) {
		// Crash shard 0's primary once traffic is flowing.
		k.AfterFunc(500*time.Microsecond, func() {
			c.CrashReplica(0, c.Shards[0].Primary)
		})
		res, err = c.RunLoad(mp, Load{Clients: 8, Ops: 1200, ReadFrac: 0.5, Verify: true, Seed: 7})
		if err != nil {
			t.Error(err)
		}
		if !c.AwaitHealthy(mp, 50*time.Millisecond) {
			t.Error("cluster never became healthy again")
		}
		mp.Sleep(2 * time.Millisecond)
		ct.Stop()
	})
	k.Run()
	if res == nil {
		t.Fatal("no result")
	}
	if res.Errors != 0 {
		t.Fatalf("%d operations failed permanently", res.Errors)
	}
	if res.BadReads != 0 {
		t.Fatalf("%d reads returned invalid payloads", res.BadReads)
	}
	sh := c.Shards[0]
	if sh.Failovers == 0 {
		t.Fatal("controller never detected the crash")
	}
	if sh.Promotions == 0 {
		t.Fatal("no primary promotion")
	}
	if sh.Resyncs == 0 {
		t.Fatal("replica never resynchronized")
	}
	if sh.Replicas[0].Restarts+sh.Replicas[1].Restarts+sh.Replicas[2].Restarts == 0 {
		t.Fatal("victim never restarted")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := ct.LastEvent("resync-done"); got == 0 {
		t.Fatal("no resync-done event recorded")
	}
}

// TestClusterOpenLoop exercises the open-loop generator: latency includes
// queueing delay, so with a deliberately overloaded arrival rate the mean
// open-loop latency must exceed the closed-loop mean on the same cluster.
func TestClusterOpenLoop(t *testing.T) {
	run := func(open bool) (time.Duration, int) {
		k := sim.New()
		c, err := New(k, quickParams())
		if err != nil {
			t.Fatal(err)
		}
		var res *LoadResult
		k.Go("main", func(p *sim.Proc) {
			l := Load{Clients: 4, Ops: 300, ReadFrac: 0.5, Seed: 11}
			if open {
				l.OpenLoop = true
				l.Rate = 2e6 // well past 4 workers' capacity: queueing builds
			}
			res, err = c.RunLoad(p, l)
			if err != nil {
				t.Error(err)
			}
		})
		k.Run()
		if res == nil || len(res.Samples) != 300 {
			t.Fatal("missing samples")
		}
		var sum time.Duration
		for _, s := range res.Samples {
			sum += s.Dur
		}
		return sum / time.Duration(len(res.Samples)), len(res.Samples)
	}
	closedMean, _ := run(false)
	openMean, _ := run(true)
	if openMean <= closedMean {
		t.Fatalf("overloaded open-loop mean %v should exceed closed-loop %v (queueing)", openMean, closedMean)
	}
}

// TestClusterRouting pins routing determinism: the same key always lands on
// the same shard, and the load spreads across all shards.
func TestClusterRouting(t *testing.T) {
	k := sim.New()
	c, err := New(k, quickParams())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for key := uint64(0); key < 512; key++ {
		s := c.Ring.Shard(key)
		if s2 := c.Ring.Shard(key); s2 != s {
			t.Fatalf("key %d routed to %d then %d", key, s, s2)
		}
		seen[s]++
	}
	if len(seen) != c.P.Shards {
		t.Fatalf("only %d of %d shards received keys", len(seen), c.P.Shards)
	}
}
