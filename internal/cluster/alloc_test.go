package cluster

import (
	"testing"

	"prdma/internal/sim"
)

// putBench builds a minimal cluster without *testing.T so benchmarks and
// AllocsPerRun tests share it.
type putBench struct {
	k *sim.Kernel
	c *Cluster
}

func newPutBench() (*putBench, error) {
	k := sim.New()
	p := DefaultParams()
	p.Shards = 2
	p.Replicas = 3
	p.PoolSize = 2
	p.Objects = 128
	p.ObjSize = 256
	c, err := New(k, p)
	if err != nil {
		return nil, err
	}
	return &putBench{k: k, c: c}, nil
}

// puts drives n replicated puts over a small key set and returns the first
// error.
func (b *putBench) puts(n int, payload []byte) error {
	var firstErr error
	b.k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := b.c.Put(p, uint64(i%64), 0, payload); err != nil && firstErr == nil {
				firstErr = err
				return
			}
		}
	})
	b.k.Run()
	return firstErr
}

// TestReplicatedPutAllocRegression pins the steady-state allocation cost of
// one replicated put: R=3 durable fan-out (pooled wire/entry images from
// the PR 4 data plane) + routing + the acknowledged-write record (per-key
// buffers reused after first touch). The remaining allocations are the
// per-op futures/Pending envelopes and replicate's completion closures.
//
// Measured on the reference toolchain: ≈ 103 allocs/op at R=3 (roughly 3×
// the ~35 of a single durable echo plus the replication bookkeeping). The
// ceiling of 190 leaves toolchain headroom while still catching an
// accidental per-op buffer copy or map churn on the routing path.
func TestReplicatedPutAllocRegression(t *testing.T) {
	const ceiling = 190.0
	b, err := newPutBench()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256)
	if err := b.puts(200, payload); err != nil {
		t.Fatal(err) // warm pools, the event heap, and the write records
	}
	const rounds = 100
	per := testing.AllocsPerRun(3, func() {
		if err := b.puts(rounds, payload); err != nil {
			t.Fatal(err)
		}
	}) / rounds
	if per > ceiling {
		t.Fatalf("replicated put allocates %.1f objects/op, want <= %.0f", per, ceiling)
	}
	t.Logf("replicated put: %.1f allocs/op", per)
}

// BenchmarkReplicatedPut measures the full replicated durable put (routing,
// R-way fan-out, quorum wait, record) at a 256 B object size.
func BenchmarkReplicatedPut(b *testing.B) {
	pb, err := newPutBench()
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	if err := pb.puts(b.N, payload); err != nil {
		b.Error(err)
	}
}
