package cluster

import (
	"time"

	"prdma/internal/replicate"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Event is one failover milestone, timestamped for the figure driver's
// phase bucketing.
type Event struct {
	At             sim.Time
	Kind           string // detect | promote | resync-start | resync-done | resync-abort
	Shard, Replica int
}

// Controller is the membership/failover controller: a sim-timer-driven
// failure detector plus the promotion and resync choreography.
//
// Detection: the controller polls every replica's liveness each CheckEvery
// (a heartbeat stand-in). On a crash it marks the replica down on every
// pooled client — writes shrink to the live set, reads divert via the
// staleness guard — and, if the victim was the shard primary, promotes the
// next live in-sync replica once that replica's redo log has fully
// replayed (engine queue drained).
//
// Resync: when the victim restarts, the controller re-establishes every
// pooled connection to it (replaying each connection's durable redo-log
// backlog server-side, with no client re-transmission — the paper's §4.2
// recovery), then ships the deduplicated acknowledged-write log for the
// down window (latest image per key, completion time ≥ pendingSince−Grace)
// over its own dedicated connection. Shipping runs in rounds while traffic
// continues; the final round runs with every pooled client held, so no
// write can be in flight when the replica is readmitted — MarkUp therefore
// never misses an acknowledged write.
type Controller struct {
	C       *Cluster
	Events  []Event
	stopped bool

	// AuditReplay, when set, runs during resync after the rejoining
	// replica's redo-log backlogs have replayed and applied but before any
	// catch-up image ships — the one instant where the replica's durable
	// state reflects exactly what it persisted on its own. The crash-point
	// sweep audits the §4.2 per-replica ack contract there.
	AuditReplay func(p *sim.Proc, sh *Shard, r int)
}

// StartController begins failure detection on a dedicated proc.
func (c *Cluster) StartController() *Controller {
	ct := &Controller{C: c}
	c.K.Go("failover-ctl", ct.loop)
	return ct
}

// Stop ends detection after the current poll; outstanding resyncs finish.
func (ct *Controller) Stop() { ct.stopped = true }

func (ct *Controller) event(at sim.Time, kind string, s, r int) {
	ct.Events = append(ct.Events, Event{At: at, Kind: kind, Shard: s, Replica: r})
}

// LastEvent returns the time of the most recent event of the given kind
// (zero if none).
func (ct *Controller) LastEvent(kind string) sim.Time {
	var at sim.Time
	for _, e := range ct.Events {
		if e.Kind == kind {
			at = e.At
		}
	}
	return at
}

func (ct *Controller) loop(p *sim.Proc) {
	for !ct.stopped {
		for _, sh := range ct.C.Shards {
			for r, rep := range sh.Replicas {
				switch {
				case !rep.alive && !sh.ctl.Down(r):
					ct.detect(p, sh, r)
				case rep.alive && sh.ctl.Down(r) && !sh.resyncing[r]:
					sh.resyncing[r] = true
					s, rr := sh, r
					ct.C.K.Go("resync", func(rp *sim.Proc) { ct.resync(rp, s, rr) })
				}
			}
		}
		p.Sleep(ct.C.P.CheckEvery)
	}
}

// detect marks the replica down across every client and promotes a new
// primary if the victim held the role. No yields before the marks: the
// membership flip is atomic under the cooperative scheduler.
func (ct *Controller) detect(p *sim.Proc, sh *Shard, r int) {
	now := p.Now()
	if sh.pendingSince[r] == 0 {
		sh.pendingSince[r] = now
	}
	sh.ctl.MarkDown(r)
	for _, cl := range sh.clients {
		cl.MarkDown(r)
	}
	sh.Failovers++
	sh.DetectLag += now.Sub(sh.Replicas[r].crashedAt)
	ct.event(now, "detect", sh.ID, r)
	if sh.Primary == r {
		ct.promote(sh, r)
	}
}

// promote elects the next live, in-sync replica as the shard primary and
// records the promotion once the new primary's redo log has replayed
// (engine queue drained — its backlog is applied, so it serves the full
// acknowledged prefix).
func (ct *Controller) promote(sh *Shard, down int) {
	n := len(sh.Replicas)
	next := -1
	for off := 1; off < n; off++ {
		i := (down + off) % n
		if sh.Replicas[i].alive && !sh.ctl.Down(i) {
			next = i
			break
		}
	}
	if next < 0 {
		return // no live replica; the shard is unavailable until a restart
	}
	sh.Primary = next
	sh.Promotions++
	ct.C.K.Go("promote-drain", func(p *sim.Proc) {
		rep := sh.Replicas[next]
		for rep.alive && rep.Engine.QueueDepth() > 0 {
			p.Sleep(20 * time.Microsecond)
		}
		ct.event(p.Now(), "promote", sh.ID, next)
	})
}

// resync readmits a restarted replica (see Controller doc). It aborts —
// keeping the replica marked down and its pendingSince floor — if the
// replica crashes again mid-resync; the detector loop restarts the
// procedure after the next restart.
func (ct *Controller) resync(p *sim.Proc, sh *Shard, r int) {
	defer func() { sh.resyncing[r] = false }()
	// One resync at a time per shard: the readmission barrier below holds
	// the whole connection pool.
	for sh.resyncBusy {
		p.Sleep(50 * time.Microsecond)
	}
	sh.resyncBusy = true
	defer func() { sh.resyncBusy = false }()

	rep := sh.Replicas[r]
	start := p.Now()
	ct.event(start, "resync-start", sh.ID, r)
	abort := func() { ct.event(p.Now(), "resync-abort", sh.ID, r) }

	// hold collects the whole connection pool behind the quiesce gate (new
	// operations divert at Shard.acquire, so this completes in bounded time
	// under load); release readmits it.
	held := make([]*replicate.Client, 0, len(sh.clients))
	hold := func() {
		sh.quiesce = true
		held = held[:0]
		for range sh.clients {
			held = append(held, sh.pool.Pop(p))
		}
	}
	release := func() {
		for _, cl := range held {
			sh.pool.Push(cl)
		}
		sh.quiesce = false
	}

	// 1. Rebuild every connection to the victim — the controller's and the
	// whole pool's — and replay their durable redo-log backlogs. Replayed
	// entries can be OLDER versions of keys the down window later
	// overwrote, so every replay must land in the victim's engine before
	// the first shipped image: the latest acknowledged image is then always
	// the last write to apply.
	shipFloor := sh.pendingSince[r].Add(-ct.C.P.Grace)
	shippedAt := make(map[uint64]sim.Time, len(sh.wrote))
	if ct.C.P.MutantResurrect {
		// Seeded bug (see Params.MutantResurrect): ship one round of images
		// first, so the replay below can land older versions on top of them.
		n, err := ct.ship(p, sh, r, shipFloor, shippedAt)
		if err != nil || !rep.alive {
			abort()
			return
		}
		sh.Shipped += int64(n)
	}
	hold()
	sh.Replayed += int64(ct.reestablish(p, sh.ctl, r))
	for _, cl := range held {
		sh.Replayed += int64(ct.reestablish(p, cl, r))
	}
	release()
	if !rep.alive {
		abort()
		return
	}
	if ct.AuditReplay != nil {
		// Let the engine apply the replayed backlog, then audit before the
		// first repair image can paper over a durability lie.
		if !ct.waitApplied(p, rep) {
			abort()
			return
		}
		ct.AuditReplay(p, sh, r)
	}

	// 2. Catch-up ship rounds while traffic continues: latest acknowledged
	// image per key for every write the replica may have missed. Under
	// sustained write load the rounds may never reach zero (each ships the
	// writes that landed during the previous one), so they are capped — the
	// barrier's final round below closes the gap, these only shrink it.
	for round := 0; ; round++ {
		n, err := ct.ship(p, sh, r, shipFloor, shippedAt)
		if err != nil || !rep.alive {
			abort()
			return
		}
		sh.Shipped += int64(n)
		if n == 0 || round >= 3 {
			break
		}
	}

	// 3. Readmission barrier: hold every pooled client (no write can be in
	// flight or complete), ship the delta since the last round, wait for
	// the victim to apply, then readmit everywhere — MarkUp therefore never
	// misses an acknowledged write.
	hold()
	n, err := ct.ship(p, sh, r, shipFloor, shippedAt)
	if err != nil || !rep.alive {
		release()
		abort()
		return
	}
	sh.Shipped += int64(n)
	if !ct.waitApplied(p, rep) {
		release()
		abort()
		return
	}
	sh.ctl.MarkUp(r)
	for _, cl := range held {
		cl.MarkUp(r)
	}
	sh.pendingSince[r] = 0
	release()
	sh.Resyncs++
	sh.ResyncTime += p.Now().Sub(start)
	ct.event(p.Now(), "resync-done", sh.ID, r)
}

// reestablish rebuilds one client's connection to replica r, replaying its
// durable redo-log backlog server-side. A cross-partition refusal (engine
// mode outside a serialized span) replays nothing; the partitioned
// controller serializes before resyncing, so it never trips this.
func (ct *Controller) reestablish(p *sim.Proc, cl *replicate.Client, r int) int {
	rec, ok := cl.Replica(r).(rpc.Recoverable)
	if !ok {
		return 0
	}
	n, err := rec.Reestablish(p)
	if err != nil {
		return 0
	}
	return n
}

// shipWindow is the ship pipeline depth: enough outstanding writes on the
// controller connection that shipping outruns the cluster's write arrival
// rate (a serial ship round could otherwise never catch up).
const shipWindow = 16

// ship sends the latest acknowledged image of every key whose record is at
// or after floor and not yet shipped at its current version, pipelined
// shipWindow deep on the controller's dedicated connection. Keys go in
// ascending order — deterministic for a fixed seed.
func (ct *Controller) ship(p *sim.Proc, sh *Shard, r int, floor sim.Time, shippedAt map[uint64]sim.Time) (int, error) {
	ac, ok := sh.ctl.Replica(r).(rpc.AsyncClient)
	if !ok {
		return 0, nil
	}
	var reqs [shipWindow]rpc.Request
	pend := make([]*rpc.Pending, 0, shipWindow)
	drain := func() error {
		for _, pd := range pend {
			if _, ok := pd.Durable.WaitTimeout(p, ct.C.P.Retry*8); !ok {
				return rpc.ErrTimeout
			}
		}
		pend = pend[:0]
		return nil
	}
	n := 0
	for _, key := range sh.sortedWroteKeys() {
		w := sh.wrote[key]
		if w.at < floor || shippedAt[key] == w.at {
			continue
		}
		at := w.at // snapshot: if the record advances mid-flight, re-ship next round
		req := &reqs[len(pend)]
		*req = rpc.Request{Op: rpc.OpWrite, Key: keyIndex(key, ct.C.P.Objects), Size: len(w.buf), Payload: w.buf}
		pd, err := ac.CallAsync(p, req)
		if err != nil {
			return n, err
		}
		pend = append(pend, pd)
		shippedAt[key] = at
		n++
		if len(pend) == shipWindow {
			if err := drain(); err != nil {
				return n, err
			}
		}
	}
	return n, drain()
}

// waitApplied waits until the replica's engine queue is drained and its
// workers have had time to finish in-flight applies.
func (ct *Controller) waitApplied(p *sim.Proc, rep *Replica) bool {
	for rep.Engine.QueueDepth() > 0 {
		if !rep.alive {
			return false
		}
		p.Sleep(20 * time.Microsecond)
	}
	p.Sleep(100 * time.Microsecond) // workers mid-apply
	return rep.alive && rep.Engine.QueueDepth() == 0
}
