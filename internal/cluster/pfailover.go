package cluster

import (
	"errors"
	"time"

	"prdma/internal/replicate"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// PController is the partitioned deployment's membership/failover
// controller: the same detect/promote/resync choreography as the serial
// Controller, running as a proc on the (single) gateway kernel.
//
// Topology restriction: Gateways == 1. Every client-side structure the
// controller touches — the connection pool, the acknowledged-write record,
// the membership marks — must live on one kernel, or the resync choreography
// would share mutable state across partitions.
//
// Serialization contract: crashes are injected by the driver at window
// barriers inside a serialized engine span (PCluster.CrashReplica), and the
// driver holds the Serialize token until the cluster reports Healthy. Every
// controller action that reaches across partitions outside the lookahead
// discipline — re-establishing connections (server-side log recovery driven
// from a gateway proc), polling a victim's engine queue depth, the
// readmission barrier — therefore executes inside serialized windows, where
// the engine provides the same global event order the serial kernel would.
// The crash-free detector poll only reads replica liveness, which changes
// exclusively at barriers, so parallel windows never observe a torn update.
type PController struct {
	C       *PCluster
	Events  []Event
	stopped bool

	// AuditReplay, when set, runs during resync after the rejoining
	// replica's redo-log backlogs have replayed and applied but before any
	// catch-up image ships — see Controller.AuditReplay.
	AuditReplay func(p *sim.Proc, grp *PGroup, r int)
}

// StartController begins failure detection on a dedicated gateway proc.
// The deployment must have been built with Gateways == 1 (NewPartitioned
// only creates the controller connections then).
func (c *PCluster) StartController() (*PController, error) {
	if c.P.Gateways != 1 || c.Groups[0].ctl == nil {
		return nil, errors.New("cluster: partitioned failover controller needs Gateways == 1")
	}
	ct := &PController{C: c}
	c.Gateways[0].K.Go("pfailover-ctl", ct.loop)
	return ct, nil
}

// Stop ends detection after the current poll; outstanding resyncs finish.
func (ct *PController) Stop() { ct.stopped = true }

func (ct *PController) event(at sim.Time, kind string, s, r int) {
	ct.Events = append(ct.Events, Event{At: at, Kind: kind, Shard: s, Replica: r})
}

func (ct *PController) loop(p *sim.Proc) {
	for !ct.stopped {
		for _, grp := range ct.C.Groups {
			for r, rep := range grp.Replicas {
				switch {
				case !rep.alive && !grp.ctl.Down(r):
					ct.detect(p, grp, r)
				case rep.alive && grp.ctl.Down(r) && !grp.resyncing[r]:
					grp.resyncing[r] = true
					g, rr := grp, r
					p.K.Go("presync", func(rp *sim.Proc) { ct.resync(rp, g, rr) })
				}
			}
		}
		p.Sleep(ct.C.P.CheckEvery)
	}
}

// detect marks the replica down across every client and promotes a new
// primary if the victim held the role (see Controller.detect).
func (ct *PController) detect(p *sim.Proc, grp *PGroup, r int) {
	now := p.Now()
	if grp.pendingSince[r] == 0 {
		grp.pendingSince[r] = now
	}
	grp.ctl.MarkDown(r)
	for _, cl := range ct.C.Gateways[0].clients[grp.ID] {
		cl.MarkDown(r)
	}
	grp.Failovers++
	grp.DetectLag += now.Sub(grp.Replicas[r].crashedAt)
	ct.event(now, "detect", grp.ID, r)
	if grp.Primary == r {
		ct.promote(p.K, grp, r)
	}
}

// promote elects the next live, in-sync replica as the group primary and
// records the promotion once its engine queue has drained (cross-partition
// read: runs only inside the serialized crash span).
func (ct *PController) promote(k *sim.Kernel, grp *PGroup, down int) {
	n := len(grp.Replicas)
	next := -1
	for off := 1; off < n; off++ {
		i := (down + off) % n
		if grp.Replicas[i].alive && !grp.ctl.Down(i) {
			next = i
			break
		}
	}
	if next < 0 {
		return // no live replica; the shard is unavailable until a restart
	}
	grp.Primary = next
	grp.Promotions++
	k.Go("promote-drain", func(p *sim.Proc) {
		rep := grp.Replicas[next]
		for rep.alive && rep.Engine.QueueDepth() > 0 {
			p.Sleep(20 * time.Microsecond)
		}
		ct.event(p.Now(), "promote", grp.ID, next)
	})
}

// resync readmits a restarted replica: reestablish every connection to it
// (server-side redo-log replay), audit, then ship the deduplicated
// acknowledged-write log in catch-up rounds and a final held-pool barrier
// round — the same procedure as Controller.resync, against the gateway's
// per-shard pool and write record.
func (ct *PController) resync(p *sim.Proc, grp *PGroup, r int) {
	defer func() { grp.resyncing[r] = false }()
	for grp.resyncBusy {
		p.Sleep(50 * time.Microsecond)
	}
	grp.resyncBusy = true
	defer func() { grp.resyncBusy = false }()

	gw := ct.C.Gateways[0]
	pool := gw.pools[grp.ID]
	clients := gw.clients[grp.ID]
	rep := grp.Replicas[r]
	start := p.Now()
	ct.event(start, "resync-start", grp.ID, r)
	abort := func() { ct.event(p.Now(), "resync-abort", grp.ID, r) }

	held := make([]*replicate.Client, 0, len(clients))
	hold := func() {
		grp.quiesce = true
		held = held[:0]
		for range clients {
			held = append(held, pool.Pop(p))
		}
	}
	release := func() {
		for _, cl := range held {
			pool.Push(cl)
		}
		grp.quiesce = false
	}

	// 1. Rebuild every connection to the victim and replay the durable
	// redo-log backlogs before any image ships (replayed entries can be
	// older versions of keys the down window later overwrote).
	shipFloor := grp.pendingSince[r].Add(-ct.C.P.Grace)
	shippedAt := make(map[uint64]sim.Time, len(gw.wrote[grp.ID]))
	if ct.C.P.MutantResurrect {
		// Seeded bug (see Params.MutantResurrect): ship one round of images
		// first, so the replay below can land older versions on top of them.
		n, err := ct.ship(p, grp, r, shipFloor, shippedAt)
		if err != nil || !rep.alive {
			abort()
			return
		}
		grp.Shipped += int64(n)
	}
	hold()
	grp.Replayed += int64(ct.reestablish(p, grp.ctl, r))
	for _, cl := range held {
		grp.Replayed += int64(ct.reestablish(p, cl, r))
	}
	release()
	if !rep.alive {
		abort()
		return
	}
	if ct.AuditReplay != nil {
		if !ct.waitApplied(p, rep) {
			abort()
			return
		}
		ct.AuditReplay(p, grp, r)
	}

	// 2. Capped catch-up ship rounds while traffic continues.
	for round := 0; ; round++ {
		n, err := ct.ship(p, grp, r, shipFloor, shippedAt)
		if err != nil || !rep.alive {
			abort()
			return
		}
		grp.Shipped += int64(n)
		if n == 0 || round >= 3 {
			break
		}
	}

	// 3. Readmission barrier: hold the whole pool, ship the final delta,
	// wait for the victim to apply, readmit everywhere.
	hold()
	n, err := ct.ship(p, grp, r, shipFloor, shippedAt)
	if err != nil || !rep.alive {
		release()
		abort()
		return
	}
	grp.Shipped += int64(n)
	if !ct.waitApplied(p, rep) {
		release()
		abort()
		return
	}
	grp.ctl.MarkUp(r)
	for _, cl := range held {
		cl.MarkUp(r)
	}
	grp.pendingSince[r] = 0
	release()
	grp.Resyncs++
	grp.ResyncTime += p.Now().Sub(start)
	ct.event(p.Now(), "resync-done", grp.ID, r)
}

// reestablish rebuilds one client's connection to replica r. The engine is
// inside the driver's serialized crash span here, so the cross-partition
// Reestablish is legal; a refusal (misuse outside a serialized span) replays
// nothing and surfaces as a lost-write violation downstream.
func (ct *PController) reestablish(p *sim.Proc, cl *replicate.Client, r int) int {
	rec, ok := cl.Replica(r).(rpc.Recoverable)
	if !ok {
		return 0
	}
	n, err := rec.Reestablish(p)
	if err != nil {
		return 0
	}
	return n
}

// ship sends the latest acknowledged image of every key at or after floor
// and not yet shipped at its current version, pipelined shipWindow deep on
// the controller's dedicated connection (see Controller.ship).
func (ct *PController) ship(p *sim.Proc, grp *PGroup, r int, floor sim.Time, shippedAt map[uint64]sim.Time) (int, error) {
	ac, ok := grp.ctl.Replica(r).(rpc.AsyncClient)
	if !ok {
		return 0, nil
	}
	wrote := ct.C.Gateways[0].wrote[grp.ID]
	var reqs [shipWindow]rpc.Request
	pend := make([]*rpc.Pending, 0, shipWindow)
	drain := func() error {
		for _, pd := range pend {
			if _, ok := pd.Durable.WaitTimeout(p, ct.C.P.Retry*8); !ok {
				return rpc.ErrTimeout
			}
		}
		pend = pend[:0]
		return nil
	}
	n := 0
	for _, key := range ct.C.sortedWroteKeys(grp) {
		w := wrote[key]
		if w.at < floor || shippedAt[key] == w.at {
			continue
		}
		at := w.at // snapshot: if the record advances mid-flight, re-ship next round
		req := &reqs[len(pend)]
		*req = rpc.Request{Op: rpc.OpWrite, Key: keyIndex(key, ct.C.P.Objects), Size: len(w.buf), Payload: w.buf}
		pd, err := ac.CallAsync(p, req)
		if err != nil {
			return n, err
		}
		pend = append(pend, pd)
		shippedAt[key] = at
		n++
		if len(pend) == shipWindow {
			if err := drain(); err != nil {
				return n, err
			}
		}
	}
	return n, drain()
}

// waitApplied waits until the replica's engine queue is drained and its
// workers have had time to finish in-flight applies (cross-partition read:
// serialized crash span only).
func (ct *PController) waitApplied(p *sim.Proc, rep *Replica) bool {
	for rep.Engine.QueueDepth() > 0 {
		if !rep.alive {
			return false
		}
		p.Sleep(20 * time.Microsecond)
	}
	p.Sleep(100 * time.Microsecond) // workers mid-apply
	return rep.alive && rep.Engine.QueueDepth() == 0
}
