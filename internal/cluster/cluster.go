package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/replicate"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Params configures a cluster deployment.
type Params struct {
	// Shards is the number of shard groups; Replicas the replication
	// factor inside each group.
	Shards, Replicas int
	// PoolSize is the number of replicated connections pooled per shard —
	// the per-shard concurrency limit on the client side.
	PoolSize int
	// Gateways is the number of client-side gateway partitions in a
	// partitioned deployment (NewPartitioned); the serial New ignores it
	// and always builds one gateway host.
	Gateways int
	// VNodes is the virtual nodes per shard on the consistent-hash ring.
	VNodes int
	// Policy is the write-completion rule (replicate.WaitAll/WaitQuorum).
	Policy replicate.Policy
	// Kind is the durable RPC family replicas speak.
	Kind rpc.Kind
	// Objects and ObjSize size each replica's store.
	Objects, ObjSize int
	// Seed derives the ring placement and all workload randomness.
	Seed uint64
	// Cfg is the per-replica RPC engine configuration.
	Cfg rpc.Config
	// Restart is a crashed replica's restart latency; Retry is the client
	// retry interval while a shard rides out a failure; CheckEvery is the
	// failure-detector poll period; Grace pads the resync window to cover
	// writes that completed between the crash and its detection.
	Restart, Retry, CheckEvery, Grace time.Duration

	// MutantResurrect seeds a known bug class for the fault-matrix
	// mutant-detection check: it disables the stores' stale-write version
	// guard and makes resync ship catch-up images BEFORE replaying the
	// victim's redo-log backlogs, so replayed old versions can resurrect
	// over newer acknowledged writes. Never set outside that check.
	MutantResurrect bool

	// Net/HostP/PM/NIC are the testbed parameters for every node.
	Net   fabric.Params
	HostP host.Params
	PM    pmem.Params
	NIC   rnic.Params
}

// DefaultParams returns a 4-shard, 3-replica quorum cluster over WFlush.
func DefaultParams() Params {
	return Params{
		Shards:     4,
		Replicas:   3,
		PoolSize:   4,
		Gateways:   2,
		VNodes:     64,
		Policy:     replicate.WaitQuorum,
		Kind:       rpc.WFlushRPC,
		Objects:    1024,
		ObjSize:    256,
		Seed:       1,
		Cfg:        rpc.DefaultConfig(),
		Restart:    2 * time.Millisecond,
		Retry:      200 * time.Microsecond,
		CheckEvery: 100 * time.Microsecond,
		Grace:      time.Millisecond,
		Net:        fabric.DefaultParams(),
		HostP:      host.DefaultParams(),
		PM:         pmem.DefaultParams(),
		NIC:        rnic.DefaultParams(),
	}
}

// Replica is one storage node of a shard group.
type Replica struct {
	Host   *host.Host
	Store  *rpc.Store
	Engine *rpc.Server

	alive     bool
	crashedAt sim.Time
	Restarts  int
}

// Alive reports whether the replica host is up (the ground truth the
// failure detector polls).
func (r *Replica) Alive() bool { return r.alive }

// wroteRec is the shard's record of one acknowledged write: the latest
// payload image and completion time per key — a fully deduplicated redo
// log the controller ships to a rejoining replica.
type wroteRec struct {
	buf []byte
	ver uint32
	at  sim.Time
}

// Shard is one replication group plus its client-side connection pool.
type Shard struct {
	ID       int
	Replicas []*Replica
	Primary  int

	// clients are the pooled replicated connections (PoolSize of them);
	// ctl is the controller's dedicated connection, never pooled. Each
	// holds its own per-replica durable connections and redo logs.
	clients []*replicate.Client
	ctl     *replicate.Client
	pool    *sim.Chan[*replicate.Client]

	// wrote is the acknowledged-write record (see wroteRec); keys holds
	// its sorted key set scratch for deterministic iteration.
	wrote map[uint64]*wroteRec
	keys  []uint64

	// ackAudit, when non-nil (EnableAckAudit), tracks per replica the
	// highest payload version that replica has durably acknowledged per
	// store slot. A durable ACK claims remote persistence (§4.2), so a
	// crashed replica's redo-log replay must restore at least this version
	// — the invariant the crash-point auditor checks before any repair
	// images are shipped.
	ackAudit []map[uint64]uint32

	// pendingSince is per-replica: the earliest moment an unresynced down
	// window began (zero when fully synced). Resync ships every key whose
	// acknowledged write completed at or after pendingSince-Grace.
	pendingSince []sim.Time
	resyncing    []bool
	resyncBusy   bool
	// quiesce diverts new operations away from the pool while the resync
	// readmission barrier collects every pooled client (see Shard.acquire).
	quiesce bool

	// Counters for the figure driver and tests.
	Puts, Gets, Retries int64
	Failovers, Promotions, Resyncs,
	Shipped, Replayed int64
	DetectLag, ResyncTime time.Duration
}

// Cluster is the full deployment: gateway host, shard groups, ring.
type Cluster struct {
	K       *sim.Kernel
	Net     *fabric.Network
	P       Params
	Ring    *Ring
	Gateway *host.Host
	Shards  []*Shard
}

// New builds the cluster testbed: one gateway (client) host and
// Shards×Replicas storage nodes, each replica with its own store, engine,
// and PoolSize+1 durable connections from the gateway.
func New(k *sim.Kernel, p Params) (*Cluster, error) {
	if p.Shards <= 0 || p.Replicas <= 0 || p.PoolSize <= 0 {
		return nil, errors.New("cluster: Shards, Replicas, PoolSize must be positive")
	}
	c := &Cluster{K: k, P: p}
	c.Net = fabric.New(k, p.Net, p.Seed^0x5eed)
	c.Ring = NewRing(p.Shards, p.VNodes, p.Seed)
	c.Gateway = host.New(k, "gateway", c.Net, p.HostP, p.PM, p.NIC)
	for s := 0; s < p.Shards; s++ {
		sh := &Shard{
			ID:           s,
			wrote:        make(map[uint64]*wroteRec),
			pendingSince: make([]sim.Time, p.Replicas),
			resyncing:    make([]bool, p.Replicas),
		}
		for r := 0; r < p.Replicas; r++ {
			h := host.New(k, fmt.Sprintf("s%dr%d", s, r), c.Net, p.HostP, p.PM, p.NIC)
			store, err := rpc.NewStore(h, p.Objects, p.ObjSize)
			if err != nil {
				return nil, err
			}
			if !p.MutantResurrect {
				// Verified payloads carry their version at byte 8 (see
				// loadgen fill); the store guard keeps a stale duplicate or
				// late retransmit from regressing a newer acked write.
				store.VersionAt = 8
			}
			engine := rpc.NewServer(h, store, p.Cfg)
			sh.Replicas = append(sh.Replicas, &Replica{Host: h, Store: store, Engine: engine, alive: true})
		}
		sh.pool = sim.NewChan[*replicate.Client](k)
		for i := 0; i <= p.PoolSize; i++ { // pool clients + one controller client
			var raw []rpc.Client
			for _, rep := range sh.Replicas {
				raw = append(raw, rpc.New(p.Kind, c.Gateway, rep.Engine, p.Cfg))
			}
			rc, err := replicate.New(k, p.Policy, raw)
			if err != nil {
				return nil, err
			}
			if i == p.PoolSize {
				sh.ctl = rc
			} else {
				sh.clients = append(sh.clients, rc)
				sh.pool.Push(rc)
			}
		}
		c.Shards = append(c.Shards, sh)
	}
	return c, nil
}

// ShardOf routes a key through the ring.
func (c *Cluster) ShardOf(key uint64) *Shard { return c.Shards[c.Ring.Shard(key)] }

// record notes an acknowledged write in the shard's deduplicated log. The
// per-key buffer is reused, so the steady state allocates nothing.
func (sh *Shard) record(key uint64, ver uint32, payload []byte, at sim.Time) {
	rec := sh.wrote[key]
	if rec == nil {
		rec = &wroteRec{buf: make([]byte, 0, len(payload))}
		sh.wrote[key] = rec
	}
	rec.buf = append(rec.buf[:0], payload...)
	rec.ver = ver
	rec.at = at
}

// acquire checks out a pooled client, yielding to the readmission barrier
// first: while the resync controller is quiescing the shard, new operations
// wait here instead of queueing on the pool, so the barrier collects the
// whole pool in bounded time no matter how many clients are hammering it.
func (sh *Shard) acquire(p *sim.Proc) *replicate.Client {
	for sh.quiesce {
		p.Sleep(20 * time.Microsecond)
	}
	return sh.pool.Pop(p)
}

// Put routes one durable replicated write. It retries across failover
// windows (full-object writes are idempotent), so a successful return
// means the write is acknowledged under the shard's policy: it must
// survive any single-replica crash. ver tags the payload version for the
// consistency checkers; pass 0 when unused.
func (c *Cluster) Put(p *sim.Proc, key uint64, ver uint32, payload []byte) error {
	sh := c.ShardOf(key)
	req := rpc.Request{Op: rpc.OpWrite, Key: keyIndex(key, c.P.Objects), Size: len(payload), Payload: payload}
	for attempt := 0; ; attempt++ {
		cl := sh.acquire(p)
		at, _, err := cl.WriteTimeout(p, &req, c.P.Retry*8)
		sh.pool.Push(cl)
		if err == nil {
			sh.Puts++
			sh.record(key, ver, payload, at)
			return nil
		}
		if attempt >= putAttempts(c.P) {
			return fmt.Errorf("cluster: put key %d failed after %d attempts: %w", key, attempt+1, err)
		}
		sh.Retries++
		p.Sleep(c.P.Retry)
	}
}

// putAttempts bounds Put's retry loop: enough to ride out a full crash +
// restart + resync window at the configured retry cadence, with margin.
func putAttempts(p Params) int {
	window := p.Restart + p.Grace + 4*p.CheckEvery
	n := int(window/p.Retry) * 4
	if n < 64 {
		n = 64
	}
	return n
}

// Get routes one read to a live in-sync replica of the owning shard.
func (c *Cluster) Get(p *sim.Proc, key uint64, size int) ([]byte, error) {
	sh := c.ShardOf(key)
	req := rpc.Request{Op: rpc.OpRead, Key: keyIndex(key, c.P.Objects), Size: size, Payload: empty}
	for attempt := 0; ; attempt++ {
		cl := sh.acquire(p)
		resp, err := cl.ReadTimeout(p, &req, c.P.Retry*8)
		sh.pool.Push(cl)
		if err == nil {
			sh.Gets++
			return resp.Data, nil
		}
		if attempt >= putAttempts(c.P) {
			return nil, fmt.Errorf("cluster: get key %d failed after %d attempts: %w", key, attempt+1, err)
		}
		sh.Retries++
		p.Sleep(c.P.Retry)
	}
}

var empty = []byte{}

// keyIndex maps a cluster key to a slot in a replica's store. The identity
// mapping modulo the arena size keeps keys < Objects injective (the Verify
// workloads rely on that); larger keyspaces alias slots, which the
// consistency checker handles by comparing only each slot's last write.
func keyIndex(key uint64, objects int) uint64 { return key % uint64(objects) }

// CrashReplica fails replica r of shard s: the host loses volatile state
// (PM survives), the engine drops its queue, and a restart timer brings
// the node back after P.Restart. The failover controller notices via its
// detector poll.
func (c *Cluster) CrashReplica(s, r int) {
	sh := c.Shards[s]
	rep := sh.Replicas[r]
	if !rep.alive {
		return
	}
	rep.alive = false
	rep.crashedAt = c.K.Now()
	rep.Host.Crash()
	rep.Engine.Crash()
	rep.Store.Crash()
	c.K.AfterFunc(c.P.Restart, func() {
		rep.Host.Restart()
		rep.alive = true
		rep.Restarts++
	})
}

// Retransmits totals RC retransmissions across every NIC in the cluster —
// the "resends" column of the adversarial-matrix figure.
func (c *Cluster) Retransmits() int64 {
	total := c.Gateway.NIC.Retransmits
	for _, sh := range c.Shards {
		for _, rep := range sh.Replicas {
			total += rep.Host.NIC.Retransmits
		}
	}
	return total
}

// StaleDrops totals version-guarded writes the replica stores rejected as
// stale (late duplicates or retransmits of overwritten versions).
func (c *Cluster) StaleDrops() int64 {
	var total int64
	for _, sh := range c.Shards {
		for _, rep := range sh.Replicas {
			total += rep.Store.StaleDrops
		}
	}
	return total
}

// PMFull totals the replicas' PM-exhaustion backpressure drops — writes the
// stores could not home because their arena ran out. Surfaced as a stat so a
// sizing mistake reads as backpressure in the figures, not a panic that
// aborts the run.
func (c *Cluster) PMFull() int64 {
	var total int64
	for _, sh := range c.Shards {
		for _, rep := range sh.Replicas {
			total += rep.Store.PMFull
		}
	}
	return total
}

// EnableAckAudit starts recording, per shard and replica, the highest
// payload version each replica durably acknowledges per store slot (the
// loadgen payload layout: a little-endian uint32 version at byte 8). The
// crash-point sweep reads the record back through AckedVersions to hold
// every replica to its §4.2 ack contract: what you durably acknowledged,
// your redo log must restore.
func (c *Cluster) EnableAckAudit() {
	for _, sh := range c.Shards {
		sh := sh
		sh.ackAudit = make([]map[uint64]uint32, c.P.Replicas)
		for r := range sh.ackAudit {
			sh.ackAudit[r] = make(map[uint64]uint32)
		}
		tag := func(req *rpc.Request) uint64 {
			if len(req.Payload) < 12 {
				return req.Key << 32
			}
			return req.Key<<32 | uint64(binary.LittleEndian.Uint32(req.Payload[8:]))
		}
		onDurable := func(replica int, t uint64, at sim.Time) {
			slot, ver := t>>32, uint32(t)
			if ver == 0 {
				return // unversioned payload: nothing to audit
			}
			if ver > sh.ackAudit[replica][slot] {
				sh.ackAudit[replica][slot] = ver
			}
		}
		for _, cl := range sh.clients {
			cl.WriteTag, cl.OnDurable = tag, onDurable
		}
	}
}

// AckedVersions returns replica r's durably-acknowledged version record
// (nil unless EnableAckAudit ran). The map is live; callers must not hold
// it across further traffic.
func (sh *Shard) AckedVersions(r int) map[uint64]uint32 {
	if sh.ackAudit == nil {
		return nil
	}
	return sh.ackAudit[r]
}

// Healthy reports whether every replica is up and readmitted (no down
// marks, no resync in flight).
func (c *Cluster) Healthy() bool {
	for _, sh := range c.Shards {
		for r, rep := range sh.Replicas {
			if !rep.alive || sh.ctl.Down(r) || sh.resyncing[r] {
				return false
			}
		}
	}
	return true
}

// AwaitHealthy blocks p until Healthy or the deadline; it reports success.
func (c *Cluster) AwaitHealthy(p *sim.Proc, d time.Duration) bool {
	deadline := p.Now().Add(d)
	for !c.Healthy() {
		if p.Now() > deadline {
			return false
		}
		p.Sleep(100 * time.Microsecond)
	}
	return true
}

// sortedWroteKeys fills sh.keys with the recorded key set in ascending
// order — deterministic iteration for shipping and verification.
func (sh *Shard) sortedWroteKeys() []uint64 {
	sh.keys = sh.keys[:0]
	for k := range sh.wrote {
		sh.keys = append(sh.keys, k)
	}
	sort.Slice(sh.keys, func(i, j int) bool { return sh.keys[i] < sh.keys[j] })
	return sh.keys
}

// CheckConsistency verifies that every acknowledged write is present and
// byte-identical on all live replicas of its shard — run after the kernel
// settles (engines drained). It returns the first divergence found.
func (c *Cluster) CheckConsistency() error {
	buf := make([]byte, c.P.ObjSize)
	for _, sh := range c.Shards {
		// Slots are shared between cluster keys (keyIndex); only the last
		// acknowledged write per slot is expected to be resident.
		lastPerSlot := make(map[uint64]uint64)
		for _, key := range sh.sortedWroteKeys() {
			slot := keyIndex(key, c.P.Objects)
			prev, ok := lastPerSlot[slot]
			if !ok || sh.wrote[key].at > sh.wrote[prev].at ||
				(sh.wrote[key].at == sh.wrote[prev].at && key > prev) {
				lastPerSlot[slot] = key
			}
		}
		for _, key := range sh.sortedWroteKeys() {
			if lastPerSlot[keyIndex(key, c.P.Objects)] != key {
				continue // overwritten by a later acknowledged write
			}
			rec := sh.wrote[key]
			want := rec.buf
			for r, rep := range sh.Replicas {
				if !rep.alive {
					continue
				}
				if !rep.Store.Has(keyIndex(key, c.P.Objects)) {
					return fmt.Errorf("shard %d replica %d: acked key %d missing", sh.ID, r, key)
				}
				got := rep.Host.PM.ReadBytesInto(rep.Store.Addr(keyIndex(key, c.P.Objects)), buf[:len(want)])
				if !bytes.Equal(got, want) {
					return fmt.Errorf("shard %d replica %d: acked key %d diverged", sh.ID, r, key)
				}
			}
		}
	}
	return nil
}
