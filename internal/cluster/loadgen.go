package cluster

import (
	"encoding/binary"
	"fmt"
	"time"

	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/ycsb"
)

// Load configures the cluster load generator.
type Load struct {
	// Clients is the number of simulated client procs (closed loop) or
	// service workers (open loop). Tens of thousands are fine: procs are
	// cheap goroutine-backed coroutines.
	Clients int
	// Ops is the total operation count across all clients.
	Ops int
	// ReadFrac is the read share of the mix (0..1).
	ReadFrac float64
	// KeySpace is the zipfian key population; Theta its skew (0.99 = YCSB).
	KeySpace int64
	Theta    float64
	// Workload, when set, drives the closed loop from a YCSB core workload
	// (ycsb.A..ycsb.F) instead of the plain ReadFrac mix: updates, inserts,
	// scans and read-modify-write pairs per the workload's own ratios.
	// Insert-grown keys wrap into KeySpace so slots stay injective for the
	// verification payloads. Open loop does not support it.
	Workload ycsb.Workload
	// MaxScan bounds workload E's scan lengths (default 8).
	MaxScan int
	// OpenLoop switches from closed-loop (each client issues the next op
	// when the previous completes) to open-loop (ops arrive on a Poisson
	// schedule at Rate ops/sec and queue for a worker; latency then
	// includes queueing delay, the paper's Fig. 8 methodology).
	OpenLoop bool
	Rate     float64
	// LogicalClients, in a partitioned open-loop run (PCluster.RunLoad),
	// sizes the modelled client population independently of the Clients
	// worker pool: arrivals are attributed to logical clients drawn from
	// this population (Poisson superposition). Zero means Clients.
	LogicalClients int
	// Verify embeds self-describing (key, version) payloads in every write
	// and checks every read against the acknowledged history. Requires
	// ObjSize ≥ 16 and snaps write keys to one writer per key so replicas
	// converge byte-identically regardless of apply interleaving.
	Verify bool
	// Seed drives all workload randomness (forked per client).
	Seed uint64
}

// Sample is one completed operation.
type Sample struct {
	At    sim.Time // completion time
	Dur   time.Duration
	Shard int
	Write bool
}

// LoadResult aggregates one load run.
type LoadResult struct {
	Samples    []Sample
	Start, End sim.Time
	Writes     int
	Reads      int
	BadReads   int
	Errors     int

	// issuedVer is the highest version issued per key (single-writer, so
	// exact); verification bounds read versions by it.
	issuedVer map[uint64]uint32
}

// fill writes the self-describing payload for (key, ver) into buf:
// key at [0,8), ver at [8,12), then a (key,ver)-derived pattern from 16.
func fill(buf []byte, key uint64, ver uint32) {
	binary.LittleEndian.PutUint64(buf[0:], key)
	binary.LittleEndian.PutUint32(buf[8:], ver)
	binary.LittleEndian.PutUint32(buf[12:], 0)
	for j := 16; j < len(buf); j++ {
		buf[j] = byte(17*key + 31*uint64(ver) + uint64(j))
	}
}

// checkFill verifies buf is a well-formed payload for key with a version
// no later than maxVer. All-zero buffers (never-written keys) pass.
func checkFill(buf []byte, key uint64, maxVer uint32) error {
	zero := true
	for _, b := range buf {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return nil
	}
	gotKey := binary.LittleEndian.Uint64(buf[0:])
	ver := binary.LittleEndian.Uint32(buf[8:])
	if gotKey != key {
		return fmt.Errorf("payload for key %d carries key %d", key, gotKey)
	}
	if ver == 0 || ver > maxVer {
		return fmt.Errorf("key %d: version %d outside issued range [1,%d]", key, ver, maxVer)
	}
	for j := 16; j < len(buf); j++ {
		if buf[j] != byte(17*key+31*uint64(ver)+uint64(j)) {
			return fmt.Errorf("key %d ver %d: pattern corrupt at byte %d", key, ver, j)
		}
	}
	return nil
}

// snapWriter maps a zipfian key to the single key in its block owned by
// this client, preserving popularity classes while guaranteeing one writer
// per key (required for byte-identical replica convergence: concurrent
// same-key writers would race apply order across replicas).
func snapWriter(zip uint64, client, clients int, keySpace int64) uint64 {
	k := (zip/uint64(clients))*uint64(clients) + uint64(client)
	if k >= uint64(keySpace) {
		k -= uint64(clients)
	}
	return k
}

// RunLoad drives the workload to completion from proc p and returns the
// samples. The failover controller (if any) keeps running; stop it after.
func (c *Cluster) RunLoad(p *sim.Proc, l Load) (*LoadResult, error) {
	if l.Clients <= 0 || l.Ops <= 0 {
		return nil, fmt.Errorf("cluster: load needs Clients>0, Ops>0")
	}
	if l.KeySpace <= 0 {
		l.KeySpace = int64(c.P.Objects)
	}
	if l.Verify {
		if c.P.ObjSize < 16 {
			return nil, fmt.Errorf("cluster: Verify needs ObjSize ≥ 16")
		}
		if int64(l.Clients) < l.KeySpace {
			l.KeySpace -= l.KeySpace % int64(l.Clients) // whole writer blocks
		}
	}
	if l.Theta == 0 {
		l.Theta = 0.99
	}
	res := &LoadResult{
		Samples:   make([]Sample, 0, l.Ops),
		Start:     p.Now(),
		issuedVer: make(map[uint64]uint32),
	}
	nextVer := make(map[uint64]uint32)

	// op runs one operation and records its sample. arrivedAt anchors the
	// latency measurement (open loop: the scheduled arrival; closed loop:
	// the issue instant).
	buf := make([][]byte, l.Clients)
	op := func(wp *sim.Proc, client int, write bool, key uint64, arrivedAt sim.Time) {
		shard := c.Ring.Shard(key)
		if write {
			ver := uint32(1)
			if l.Verify {
				key = snapWriter(key, client, l.Clients, l.KeySpace)
				shard = c.Ring.Shard(key)
				ver = nextVer[key] + 1
				nextVer[key] = ver
				res.issuedVer[key] = ver
			}
			if buf[client] == nil {
				buf[client] = make([]byte, c.P.ObjSize)
			}
			payload := buf[client]
			if l.Verify {
				fill(payload, key, ver)
			}
			if err := c.Put(wp, key, ver, payload); err != nil {
				res.Errors++
				return
			}
			res.Writes++
		} else {
			data, err := c.Get(wp, key, c.P.ObjSize)
			if err != nil {
				res.Errors++
				return
			}
			res.Reads++
			if l.Verify {
				if err := checkFill(data, key, res.issuedVer[key]); err != nil {
					res.BadReads++
				}
			}
		}
		now := wp.Now()
		res.Samples = append(res.Samples, Sample{At: now, Dur: now.Sub(arrivedAt), Shard: shard, Write: write})
	}

	// scanOp serves one workload-E scan as ScanLen sequential reads; the
	// whole scan is one sample.
	scanOp := func(wp *sim.Proc, key uint64, n int) {
		start := wp.Now()
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			k := (key + uint64(i)) % uint64(l.KeySpace)
			data, err := c.Get(wp, k, c.P.ObjSize)
			if err != nil {
				res.Errors++
				return
			}
			res.Reads++
			if l.Verify {
				if err := checkFill(data, k, res.issuedVer[k]); err != nil {
					res.BadReads++
				}
			}
		}
		now := wp.Now()
		res.Samples = append(res.Samples, Sample{At: now, Dur: now.Sub(start), Shard: c.Ring.Shard(key)})
	}

	wg := sim.NewWaitGroup(c.K)
	if l.OpenLoop && l.Workload != 0 {
		return nil, fmt.Errorf("cluster: YCSB workloads run closed-loop only")
	}
	if l.OpenLoop {
		if l.Rate <= 0 {
			return nil, fmt.Errorf("cluster: open loop needs Rate > 0")
		}
		type arrival struct {
			at    sim.Time
			key   uint64
			write bool
			stop  bool
		}
		queue := sim.NewChan[arrival](c.K)
		for w := 0; w < l.Clients; w++ {
			wg.Add(1)
			client := w
			c.K.Go("load-worker", func(wp *sim.Proc) {
				defer wg.Done()
				for {
					a := queue.Pop(wp)
					if a.stop {
						return
					}
					op(wp, client, a.write, a.key, a.at)
				}
			})
		}
		wg.Add(1)
		c.K.Go("load-arrivals", func(ap *sim.Proc) {
			defer wg.Done()
			rng := sim.NewRand(l.Seed ^ 0xa11a)
			zipf := ycsb.NewZipfian(rng, l.KeySpace, l.Theta)
			for i := 0; i < l.Ops; i++ {
				gap := time.Duration(rng.Exp(1e9 / l.Rate))
				ap.Sleep(gap)
				queue.Push(arrival{
					at:    ap.Now(),
					key:   uint64(zipf.Scrambled()),
					write: rng.Float64() >= l.ReadFrac,
				})
			}
			for w := 0; w < l.Clients; w++ {
				queue.Push(arrival{stop: true})
			}
		})
	} else if l.Workload != 0 {
		maxScan := l.MaxScan
		if maxScan <= 0 {
			maxScan = 8
		}
		issued := 0
		for w := 0; w < l.Clients; w++ {
			wg.Add(1)
			client := w
			c.K.Go("ycsb-client", func(wp *sim.Proc) {
				defer wg.Done()
				gen := ycsb.NewGenerator(l.Workload, ycsb.Config{
					Records:   int(l.KeySpace),
					ValueSize: c.P.ObjSize,
					Theta:     l.Theta,
					MaxScan:   maxScan,
					Seed:      l.Seed ^ (uint64(client)+1)*0x9e3779b97f4a7c15,
				})
				for issued < l.Ops {
					issued++
					// One generator draw is one logical op; RMW pairs (F)
					// sample as a read plus a write.
					for _, r := range gen.Next() {
						key := r.Key % uint64(l.KeySpace)
						switch r.Op {
						case rpc.OpScan:
							scanOp(wp, key, r.ScanLen)
						case rpc.OpWrite:
							op(wp, client, true, key, wp.Now())
						default:
							op(wp, client, false, key, wp.Now())
						}
					}
				}
			})
		}
	} else {
		issued := 0
		for w := 0; w < l.Clients; w++ {
			wg.Add(1)
			client := w
			c.K.Go("load-client", func(wp *sim.Proc) {
				defer wg.Done()
				rng := sim.NewRand(l.Seed ^ (uint64(client)+1)*0x9e3779b97f4a7c15)
				zipf := ycsb.NewZipfian(rng, l.KeySpace, l.Theta)
				for issued < l.Ops {
					issued++
					op(wp, client, rng.Float64() >= l.ReadFrac, uint64(zipf.Scrambled()), wp.Now())
				}
			})
		}
	}
	wg.Wait(p)
	res.End = p.Now()
	return res, nil
}

// Throughput returns completed ops per second of simulated time.
func (r *LoadResult) Throughput() float64 {
	el := r.End.Sub(r.Start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(len(r.Samples)) / el
}
