package cluster

import (
	"testing"
)

// TestRingBalance bounds the load imbalance of the consistent-hash ring:
// with 64 virtual nodes per shard, no shard's share of a large key
// population strays more than 35% from the fair share.
func TestRingBalance(t *testing.T) {
	const keys = 200_000
	for _, shards := range []int{2, 4, 8, 16} {
		r := NewRing(shards, 64, 42)
		counts := make([]int, shards)
		for k := uint64(0); k < keys; k++ {
			counts[r.Shard(k)]++
		}
		fair := float64(keys) / float64(shards)
		for s, c := range counts {
			dev := float64(c)/fair - 1
			if dev < -0.35 || dev > 0.35 {
				t.Errorf("%d shards: shard %d holds %d keys (%.0f%% off fair share)",
					shards, s, c, dev*100)
			}
		}
	}
}

// TestRingMinimalMovement checks the defining property of consistent
// hashing: removing one shard relocates only the keys it owned (they all
// move), and every other key keeps its placement. Re-adding the shard
// restores the original placement exactly.
func TestRingMinimalMovement(t *testing.T) {
	const keys = 50_000
	const shards = 8
	r := NewRing(shards, 64, 7)
	before := make([]int, keys)
	for k := range before {
		before[k] = r.Shard(uint64(k))
	}

	const victim = 3
	r.Remove(victim)
	moved, stayed := 0, 0
	for k := range before {
		after := r.Shard(uint64(k))
		if after == victim {
			t.Fatalf("key %d still maps to the removed shard", k)
		}
		if before[k] == victim {
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key %d moved from surviving shard %d to %d", k, before[k], after)
		}
		stayed++
	}
	if moved == 0 || stayed == 0 {
		t.Fatalf("degenerate split: moved=%d stayed=%d", moved, stayed)
	}
	// Roughly 1/shards of the keys should have moved.
	frac := float64(moved) / float64(keys)
	if frac < 0.04 || frac > 0.30 {
		t.Errorf("removal moved %.1f%% of keys, want ≈ %.1f%%", frac*100, 100.0/shards)
	}

	r.Add(victim)
	for k := range before {
		if got := r.Shard(uint64(k)); got != before[k] {
			t.Fatalf("after re-adding shard %d, key %d maps to %d, want %d", victim, k, got, before[k])
		}
	}
}

// TestRingDeterminism pins placement to the seed: the same seed rebuilds
// identical placement; a different seed produces a different one.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(6, 64, 99)
	b := NewRing(6, 64, 99)
	c := NewRing(6, 64, 100)
	same, diff := true, false
	for k := uint64(0); k < 10_000; k++ {
		if a.Shard(k) != b.Shard(k) {
			same = false
		}
		if a.Shard(k) != c.Shard(k) {
			diff = true
		}
	}
	if !same {
		t.Error("identical seeds produced different placements")
	}
	if !diff {
		t.Error("different seeds produced identical placements (suspicious mixing)")
	}
	if got := a.Points(); got != 6*64 {
		t.Errorf("ring has %d points, want %d", got, 6*64)
	}
	if got := a.Shards(); len(got) != 6 || got[0] != 0 || got[5] != 5 {
		t.Errorf("Shards() = %v", got)
	}
}
