// Package cluster composes the repo's single-server durable-RPC substrate
// into a partitioned, replicated KV service: N shard groups, each an R-way
// replication group driven through internal/replicate over any durable RPC
// family, with consistent-hash routing, a membership/failover controller,
// and a cluster-scale load generator. See DESIGN.md §10.
package cluster

import (
	"fmt"
	"sort"
)

// mix is splitmix64: a fast, well-distributed 64-bit mixer used both to
// place virtual nodes on the ring and to hash keys onto it. Deterministic
// by construction — placement depends only on (seed, shard, vnode).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type ringPoint struct {
	h     uint64
	shard int
}

// Ring is a consistent-hash ring mapping keys to shards through VNodes
// virtual points per shard. Removing a shard moves only the keys that
// hashed to its points (≈1/N of the space); the rest stay put — the
// property the ring tests pin down.
type Ring struct {
	seed   uint64
	vnodes int
	points []ringPoint
}

// NewRing builds a ring of shards×vnodes points under a fixed seed.
func NewRing(shards, vnodes int, seed uint64) *Ring {
	if shards <= 0 || vnodes <= 0 {
		panic(fmt.Sprintf("cluster: ring needs shards>0, vnodes>0 (got %d, %d)", shards, vnodes))
	}
	r := &Ring{seed: seed, vnodes: vnodes}
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	return r
}

// Add places shard s's virtual points on the ring.
func (r *Ring) Add(s int) {
	for v := 0; v < r.vnodes; v++ {
		h := mix(r.seed ^ mix(uint64(s)<<20|uint64(v)))
		r.points = append(r.points, ringPoint{h: h, shard: s})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].shard < r.points[j].shard // total order: ties broken by shard
	})
}

// Remove deletes shard s's points from the ring; keys that hashed to them
// fall through to the next point clockwise.
func (r *Ring) Remove(s int) {
	kept := r.points[:0]
	for _, pt := range r.points {
		if pt.shard != s {
			kept = append(kept, pt)
		}
	}
	r.points = kept
}

// Shard maps a key to its owning shard: the first ring point clockwise
// from the key's hash.
func (r *Ring) Shard(key uint64) int {
	if len(r.points) == 0 {
		panic("cluster: empty ring")
	}
	h := mix(r.seed ^ mix(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the highest point, the ring continues at the lowest
	}
	return r.points[i].shard
}

// Shards returns the set of shards currently on the ring, sorted.
func (r *Ring) Shards() []int {
	seen := map[int]bool{}
	var out []int
	for _, pt := range r.points {
		if !seen[pt.shard] {
			seen[pt.shard] = true
			out = append(out, pt.shard)
		}
	}
	sort.Ints(out)
	return out
}

// Points returns the ring size (for tests).
func (r *Ring) Points() int { return len(r.points) }
