package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/replicate"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/ycsb"
)

// This file is the partitioned (engine-mode) cluster deployment: the same
// sharded, replicated durable KV as New, but spread over the kernels of one
// sim.Engine so independent partitions can execute on parallel workers.
//
// Partition layout: gateway g is engine kernel g, shard group s (all of its
// replicas) is kernel Gateways+s. Every client↔replica connection crosses a
// partition boundary and therefore runs the rpc layer's engine mode
// (WFlush-RPC only). Two deliberate scope cuts versus New:
//
//   - no failover controller: crash/recovery needs global-order surgery
//     (log recovery walks server PM from client procs); the partitioned
//     topology runs crash-free and the failover suites pin one kernel;
//   - per-gateway bookkeeping: acknowledged-write records, counters and
//     samples are owned by their gateway's kernel and merged canonically
//     after the engine drains, so no shared mutable state crosses kernels.

// PGroup is one shard group's partition: a kernel hosting all its replicas.
type PGroup struct {
	ID       int
	K        *sim.Kernel
	Replicas []*Replica
}

// PGateway is one client-side partition: a gateway host plus its per-shard
// connection pools and gateway-local bookkeeping.
type PGateway struct {
	ID   int
	K    *sim.Kernel
	Host *host.Host

	pools []*sim.Chan[*replicate.Client] // per shard
	wrote []map[uint64]*wroteRec         // per shard: writes acked via this gateway

	Puts, Gets int64
}

// PCluster is the partitioned deployment.
type PCluster struct {
	Eng  *sim.Engine
	P    Params
	Net  *fabric.Network
	Ring *Ring

	Gateways []*PGateway
	Groups   []*PGroup
}

// NewPartitioned builds the partitioned cluster on a fresh engine with the
// given worker count. The engine's lookahead is the fabric's one-way
// propagation delay — the minimum cross-partition latency, so no message can
// ever need delivery inside the current window.
func NewPartitioned(workers int, p Params) (*PCluster, error) {
	if p.Shards <= 0 || p.Replicas <= 0 || p.PoolSize <= 0 {
		return nil, errors.New("cluster: Shards, Replicas, PoolSize must be positive")
	}
	if p.Gateways <= 0 {
		return nil, errors.New("cluster: partitioned deployment needs Gateways > 0")
	}
	if p.Kind != rpc.WFlushRPC {
		return nil, fmt.Errorf("cluster: partitioned deployment supports WFlushRPC only (engine mode), not %v", p.Kind)
	}
	c := &PCluster{
		Eng:  sim.NewEngine(p.Net.Lookahead(), workers),
		P:    p,
		Ring: NewRing(p.Shards, p.VNodes, p.Seed),
	}
	for g := 0; g < p.Gateways; g++ {
		c.Gateways = append(c.Gateways, &PGateway{ID: g, K: c.Eng.NewKernel()})
	}
	c.Net = fabric.New(c.Gateways[0].K, p.Net, p.Seed^0x5eed)
	for g, gw := range c.Gateways {
		gw.Host = host.New(gw.K, fmt.Sprintf("gw%d", g), c.Net, p.HostP, p.PM, p.NIC)
	}
	for s := 0; s < p.Shards; s++ {
		grp := &PGroup{ID: s, K: c.Eng.NewKernel()}
		for r := 0; r < p.Replicas; r++ {
			h := host.New(grp.K, fmt.Sprintf("s%dr%d", s, r), c.Net, p.HostP, p.PM, p.NIC)
			store, err := rpc.NewStore(h, p.Objects, p.ObjSize)
			if err != nil {
				return nil, err
			}
			store.VersionAt = 8
			engine := rpc.NewServer(h, store, p.Cfg)
			grp.Replicas = append(grp.Replicas, &Replica{Host: h, Store: store, Engine: engine, alive: true})
		}
		c.Groups = append(c.Groups, grp)
	}
	for _, gw := range c.Gateways {
		gw.pools = make([]*sim.Chan[*replicate.Client], p.Shards)
		gw.wrote = make([]map[uint64]*wroteRec, p.Shards)
		for s, grp := range c.Groups {
			gw.pools[s] = sim.NewChan[*replicate.Client](gw.K)
			gw.wrote[s] = make(map[uint64]*wroteRec)
			for i := 0; i < p.PoolSize; i++ {
				var raw []rpc.Client
				for _, rep := range grp.Replicas {
					raw = append(raw, rpc.New(p.Kind, gw.Host, rep.Engine, p.Cfg))
				}
				rc, err := replicate.New(gw.K, p.Policy, raw)
				if err != nil {
					return nil, err
				}
				gw.pools[s].Push(rc)
			}
		}
	}
	return c, nil
}

func (gw *PGateway) record(shard int, key uint64, ver uint32, payload []byte, at sim.Time) {
	rec := gw.wrote[shard][key]
	if rec == nil {
		rec = &wroteRec{buf: make([]byte, 0, len(payload))}
		gw.wrote[shard][key] = rec
	}
	rec.buf = append(rec.buf[:0], payload...)
	rec.ver = ver
	rec.at = at
}

// PutOn routes one durable replicated write through gateway g. p must be a
// proc on that gateway's kernel. The crash-free topology needs no retry
// loop: an error here is a bug, not a failover window.
func (c *PCluster) PutOn(p *sim.Proc, g int, key uint64, ver uint32, payload []byte) error {
	gw := c.Gateways[g]
	s := c.Ring.Shard(key)
	req := rpc.Request{Op: rpc.OpWrite, Key: keyIndex(key, c.P.Objects), Size: len(payload), Payload: payload}
	cl := gw.pools[s].Pop(p)
	at, _, err := cl.Write(p, &req)
	gw.pools[s].Push(cl)
	if err != nil {
		return fmt.Errorf("cluster: put key %d via gw %d: %w", key, g, err)
	}
	gw.Puts++
	gw.record(s, key, ver, payload, at)
	return nil
}

// GetOn routes one read through gateway g (p on that gateway's kernel).
func (c *PCluster) GetOn(p *sim.Proc, g int, key uint64, size int) ([]byte, error) {
	gw := c.Gateways[g]
	s := c.Ring.Shard(key)
	req := rpc.Request{Op: rpc.OpRead, Key: keyIndex(key, c.P.Objects), Size: size, Payload: empty}
	cl := gw.pools[s].Pop(p)
	resp, err := cl.Read(p, &req)
	gw.pools[s].Push(cl)
	if err != nil {
		return nil, fmt.Errorf("cluster: get key %d via gw %d: %w", key, g, err)
	}
	gw.Gets++
	return resp.Data, nil
}

// Puts and Gets total the per-gateway counters.
func (c *PCluster) Puts() int64 {
	var n int64
	for _, gw := range c.Gateways {
		n += gw.Puts
	}
	return n
}

func (c *PCluster) Gets() int64 {
	var n int64
	for _, gw := range c.Gateways {
		n += gw.Gets
	}
	return n
}

// CheckConsistency verifies, after the engine drains, that the last
// acknowledged write per store slot is resident and byte-identical on every
// replica of its shard. Acknowledged-write records are merged across
// gateways with a deterministic (time, key, gateway) tie-break.
func (c *PCluster) CheckConsistency() error {
	buf := make([]byte, c.P.ObjSize)
	for s, grp := range c.Groups {
		type lastRec struct {
			key uint64
			gw  int
			rec *wroteRec
		}
		lastPerSlot := make(map[uint64]lastRec)
		for g, gw := range c.Gateways {
			keys := make([]uint64, 0, len(gw.wrote[s]))
			for k := range gw.wrote[s] {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, key := range keys {
				rec := gw.wrote[s][key]
				slot := keyIndex(key, c.P.Objects)
				prev, ok := lastPerSlot[slot]
				if !ok || rec.at > prev.rec.at ||
					(rec.at == prev.rec.at && (key > prev.key || (key == prev.key && g > prev.gw))) {
					lastPerSlot[slot] = lastRec{key: key, gw: g, rec: rec}
				}
			}
		}
		slots := make([]uint64, 0, len(lastPerSlot))
		for slot := range lastPerSlot {
			slots = append(slots, slot)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		for _, slot := range slots {
			want := lastPerSlot[slot].rec.buf
			for r, rep := range grp.Replicas {
				if !rep.Store.Has(slot) {
					return fmt.Errorf("shard %d replica %d: acked slot %d missing", s, r, slot)
				}
				got := rep.Host.PM.ReadBytesInto(rep.Store.Addr(slot), buf[:len(want)])
				if !bytes.Equal(got, want) {
					return fmt.Errorf("shard %d replica %d: acked slot %d diverged", s, r, slot)
				}
			}
		}
	}
	return nil
}

// PLoadResult aggregates a partitioned load run. Everything in it is a pure
// function of the simulation, so Fingerprint is comparable across worker
// counts.
type PLoadResult struct {
	Samples  []Sample
	End      sim.Time
	Writes   int
	Reads    int
	BadReads int
	Errors   int

	// QueueHWM is the deepest any gateway's open-loop arrival queue got —
	// the boundedness witness for the large-population smoke runs.
	QueueHWM int
	// DistinctClients counts logical clients that issued at least one op
	// (open loop with LogicalClients; else the closed-loop client count).
	DistinctClients int
}

// Throughput returns completed ops per second of simulated time.
func (r *PLoadResult) Throughput() float64 {
	el := r.End.Duration().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(len(r.Samples)) / el
}

// Fingerprint hashes the merged samples and counters; byte-identical runs
// have equal fingerprints.
func (r *PLoadResult) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, s := range r.Samples {
		put(uint64(s.At))
		put(uint64(s.Dur))
		put(uint64(s.Shard))
		if s.Write {
			put(1)
		} else {
			put(0)
		}
	}
	put(uint64(r.End))
	put(uint64(r.Writes))
	put(uint64(r.Reads))
	put(uint64(r.BadReads))
	put(uint64(r.Errors))
	put(uint64(r.QueueHWM))
	put(uint64(r.DistinctClients))
	return h.Sum64()
}

// ownerGateway maps a verified key to the gateway whose client owns it:
// snapWriter gives key k to client k mod Clients, and client c drives
// through gateway c mod Gateways.
func ownerGateway(key uint64, clients, gateways int) int {
	return int(key%uint64(clients)) % gateways
}

// RunLoad drives the partitioned workload: it spawns per-gateway client
// procs, runs the engine to completion, and merges the per-gateway results
// canonically (by completion time, then gateway). Closed loop and the plain
// open-loop mix are supported; YCSB workload mixes stay on the serial
// cluster.
//
// In open loop, Load.LogicalClients (when > over the worker count) models a
// client population far larger than the service-worker pool: the aggregate
// Poisson arrival process is the superposition of the population's
// individual processes, each arrival is attributed to one logical client,
// and key choice is offset per client so the footprint spreads the way a
// real population's would.
func (c *PCluster) RunLoad(l Load) (*PLoadResult, error) {
	if l.Clients <= 0 || l.Ops <= 0 {
		return nil, fmt.Errorf("cluster: load needs Clients>0, Ops>0")
	}
	if l.Workload != 0 {
		return nil, fmt.Errorf("cluster: YCSB workloads run on the serial cluster only")
	}
	G := c.P.Gateways
	if l.KeySpace <= 0 {
		l.KeySpace = int64(c.P.Objects)
	}
	if l.Verify {
		if c.P.ObjSize < 16 {
			return nil, fmt.Errorf("cluster: Verify needs ObjSize ≥ 16")
		}
		if int64(l.Clients) < l.KeySpace {
			l.KeySpace -= l.KeySpace % int64(l.Clients)
		}
	}
	if l.Theta == 0 {
		l.Theta = 0.99
	}

	type gwRun struct {
		samples   []Sample
		writes    int
		reads     int
		badReads  int
		errors    int
		queueHWM  int
		clientSet map[int]struct{}
		issuedVer map[uint64]uint32
		end       sim.Time
	}
	runs := make([]*gwRun, G)

	for g := 0; g < G; g++ {
		g := g
		gw := c.Gateways[g]
		run := &gwRun{issuedVer: make(map[uint64]uint32), clientSet: make(map[int]struct{})}
		runs[g] = run
		nextVer := make(map[uint64]uint32)

		// op runs one operation on a proc of this gateway's kernel. Reads of
		// keys owned by another gateway's clients check payload structure
		// only: the issued-version history lives with the owner.
		buf := make(map[int][]byte)
		op := func(wp *sim.Proc, client int, write bool, key uint64, arrivedAt sim.Time) {
			shard := c.Ring.Shard(key)
			if write {
				ver := uint32(1)
				if l.Verify {
					key = snapWriter(key, client, l.Clients, l.KeySpace)
					shard = c.Ring.Shard(key)
					ver = nextVer[key] + 1
					nextVer[key] = ver
					run.issuedVer[key] = ver
				}
				payload := buf[client]
				if payload == nil {
					payload = make([]byte, c.P.ObjSize)
					buf[client] = payload
				}
				if l.Verify {
					fill(payload, key, ver)
				}
				if err := c.PutOn(wp, g, key, ver, payload); err != nil {
					run.errors++
					return
				}
				run.writes++
			} else {
				data, err := c.GetOn(wp, g, key, c.P.ObjSize)
				if err != nil {
					run.errors++
					return
				}
				run.reads++
				if l.Verify {
					maxVer := uint32(math.MaxUint32)
					if ownerGateway(key, l.Clients, G) == g {
						maxVer = run.issuedVer[key]
					}
					if err := checkFill(data, key, maxVer); err != nil {
						run.badReads++
					}
				}
			}
			now := wp.Now()
			run.samples = append(run.samples, Sample{At: now, Dur: now.Sub(arrivedAt), Shard: shard, Write: write})
		}

		wg := sim.NewWaitGroup(gw.K)
		if l.OpenLoop {
			if l.Rate <= 0 {
				return nil, fmt.Errorf("cluster: open loop needs Rate > 0")
			}
			population := l.LogicalClients
			if population < l.Clients {
				population = l.Clients
			}
			popG := population/G + 1 // this gateway's logical clients: g, g+G, ...
			ops := l.Ops / G
			if g < l.Ops%G {
				ops++
			}
			workers := l.Clients / G
			if g < l.Clients%G {
				workers++
			}
			if workers < 1 {
				workers = 1
			}
			type arrival struct {
				at     sim.Time
				client int
				key    uint64
				write  bool
				stop   bool
			}
			queue := sim.NewChan[arrival](gw.K)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				gw.K.Go(fmt.Sprintf("gw%d-worker", g), func(wp *sim.Proc) {
					defer wg.Done()
					for {
						a := queue.Pop(wp)
						if a.stop {
							return
						}
						op(wp, a.client, a.write, a.key, a.at)
					}
				})
			}
			wg.Add(1)
			gw.K.Go(fmt.Sprintf("gw%d-arrivals", g), func(ap *sim.Proc) {
				defer wg.Done()
				rng := sim.NewRand(l.Seed ^ (uint64(g)+1)*0xa11a)
				zipf := ycsb.NewZipfian(rng, l.KeySpace, l.Theta)
				for i := 0; i < ops; i++ {
					gap := time.Duration(rng.Exp(1e9 / (l.Rate / float64(G))))
					ap.Sleep(gap)
					cid := g + G*rng.Intn(popG)
					run.clientSet[cid] = struct{}{}
					// Offset the zipfian draw per logical client so a large
					// population touches a spread of keys, not one hot set.
					key := (uint64(zipf.Scrambled()) + uint64(cid)*7919) % uint64(l.KeySpace)
					queue.Push(arrival{
						at: ap.Now(), client: cid, key: key,
						write: rng.Float64() >= l.ReadFrac,
					})
					if d := queue.Len(); d > run.queueHWM {
						run.queueHWM = d
					}
				}
				for w := 0; w < workers; w++ {
					queue.Push(arrival{stop: true})
				}
			})
		} else {
			// Closed loop: global client ids c with c mod G == g live here,
			// each with a static ops quota (no cross-kernel shared counter).
			for client := g; client < l.Clients; client += G {
				wg.Add(1)
				client := client
				ops := l.Ops / l.Clients
				if client < l.Ops%l.Clients {
					ops++
				}
				run.clientSet[client] = struct{}{}
				gw.K.Go(fmt.Sprintf("gw%d-client%d", g, client), func(wp *sim.Proc) {
					defer wg.Done()
					rng := sim.NewRand(l.Seed ^ (uint64(client)+1)*0x9e3779b97f4a7c15)
					zipf := ycsb.NewZipfian(rng, l.KeySpace, l.Theta)
					for i := 0; i < ops; i++ {
						op(wp, client, rng.Float64() >= l.ReadFrac, uint64(zipf.Scrambled()), wp.Now())
					}
				})
			}
		}
		gw.K.Go(fmt.Sprintf("gw%d-join", g), func(p *sim.Proc) {
			wg.Wait(p)
			run.end = p.Now()
		})
	}

	c.Eng.Run()

	res := &PLoadResult{}
	for _, run := range runs {
		res.Samples = append(res.Samples, run.samples...)
		res.Writes += run.writes
		res.Reads += run.reads
		res.BadReads += run.badReads
		res.Errors += run.errors
		res.DistinctClients += len(run.clientSet)
		if run.queueHWM > res.QueueHWM {
			res.QueueHWM = run.queueHWM
		}
		if run.end > res.End {
			res.End = run.end
		}
	}
	// Canonical merge: completion time, then source gateway, then that
	// gateway's completion order — the concatenation above is already in
	// (gateway, local) order, so a stable sort on time is exactly that.
	sort.SliceStable(res.Samples, func(i, j int) bool { return res.Samples[i].At < res.Samples[j].At })
	return res, nil
}
