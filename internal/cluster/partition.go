package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/replicate"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/ycsb"
)

// This file is the partitioned (engine-mode) cluster deployment: the same
// sharded, replicated durable KV as New, but spread over the kernels of one
// sim.Engine so independent partitions can execute on parallel workers.
//
// Partition layout: gateway g is engine kernel g, shard group s (all of its
// replicas) is kernel Gateways+s. Every client↔replica connection crosses a
// partition boundary and therefore runs the rpc layer's engine mode; all
// four durable RPC families are supported — the per-family redo-log
// ownership split lives in rpc.NewDurable. Bookkeeping is per gateway:
// acknowledged-write records, counters and samples are owned by their
// gateway's kernel and merged canonically after the engine drains, so no
// shared mutable state crosses kernels on the data plane.
//
// Crash/recovery is supported with one topology restriction: the failover
// controller (StartController, pfailover.go) requires Gateways == 1, so
// every client-side structure it touches lives on a single kernel. Crash
// injection is driver-driven at window barriers — CrashReplica and
// RestartReplica run only from driver context inside a serialized engine
// span (sim.Engine.Serialize), where a global event order exists. The
// crash-free data plane keeps its parallel window execution, and a
// Gateways>1 deployment is byte-identical to what it was before failover
// support existed (the controller connection is only built for Gateways==1).

// PGroup is one shard group's partition: a kernel hosting all its replicas.
//
// The controller fields below the kernel handle are populated only in a
// Gateways==1 deployment (NewPartitioned builds the ctl connection then).
// Despite living next to the server-side replicas, they are client-side
// state: every one of them is owned by the gateway kernel's procs — or by
// the driver at a window barrier — and is never touched by the group's own
// kernel.
type PGroup struct {
	ID       int
	K        *sim.Kernel
	Replicas []*Replica

	// ctl is the controller's dedicated replicated connection (never
	// pooled); nil unless Gateways == 1.
	ctl *replicate.Client

	// pendingSince/resyncing/resyncBusy/quiesce mirror Shard's failover
	// bookkeeping (see Shard); Primary is the current primary replica.
	pendingSince []sim.Time
	resyncing    []bool
	resyncBusy   bool
	quiesce      bool
	Primary      int

	// ackAudit mirrors Shard.ackAudit: per replica, the highest payload
	// version durably acknowledged per store slot (EnableAckAudit).
	ackAudit []map[uint64]uint32

	// keys is the sorted-key scratch for deterministic ship iteration.
	keys []uint64

	// Controller counters (same meaning as on Shard).
	Failovers, Promotions, Resyncs,
	Shipped, Replayed, Retries int64
	DetectLag, ResyncTime time.Duration
}

// PGateway is one client-side partition: a gateway host plus its per-shard
// connection pools and gateway-local bookkeeping.
type PGateway struct {
	ID   int
	K    *sim.Kernel
	Host *host.Host

	pools   []*sim.Chan[*replicate.Client] // per shard
	clients [][]*replicate.Client          // per shard: the pooled clients, for membership marks
	wrote   []map[uint64]*wroteRec         // per shard: writes acked via this gateway

	Puts, Gets int64
}

// PCluster is the partitioned deployment.
type PCluster struct {
	Eng  *sim.Engine
	P    Params
	Net  *fabric.Network
	Ring *Ring

	Gateways []*PGateway
	Groups   []*PGroup
}

// CoordStats reports the deployment's window-coordination counters: how
// many conservative windows ran, how many of those fused (solo-kernel
// windows executed without a barrier), how many idle kernel dispatches were
// skipped, how many windows actually entered the worker barrier, and the
// cross-transfer slab hit rate. All values are deterministic at any worker
// count; read them after the load completes, before Shutdown.
func (c *PCluster) CoordStats() (windows, fused, idleSkips, barriers uint64, slabHits, slabMisses int64) {
	slabHits, slabMisses = c.Net.XferSlabStats()
	return c.Eng.Windows(), c.Eng.Fused(), c.Eng.IdleSkips(), c.Eng.Barriers(), slabHits, slabMisses
}

// NewPartitioned builds the partitioned cluster on a fresh engine with the
// given worker count. The engine's lookahead is the fabric's one-way
// propagation delay — the minimum cross-partition latency, so no message can
// ever need delivery inside the current window.
func NewPartitioned(workers int, p Params) (*PCluster, error) {
	if p.Shards <= 0 || p.Replicas <= 0 || p.PoolSize <= 0 {
		return nil, errors.New("cluster: Shards, Replicas, PoolSize must be positive")
	}
	if p.Gateways <= 0 {
		return nil, errors.New("cluster: partitioned deployment needs Gateways > 0")
	}
	if !p.Kind.Durable() {
		return nil, fmt.Errorf("cluster: partitioned deployment needs a durable RPC family (engine mode), not %v", p.Kind)
	}
	c := &PCluster{
		Eng:  sim.NewEngine(p.Net.Lookahead(), workers),
		P:    p,
		Ring: NewRing(p.Shards, p.VNodes, p.Seed),
	}
	for g := 0; g < p.Gateways; g++ {
		c.Gateways = append(c.Gateways, &PGateway{ID: g, K: c.Eng.NewKernel()})
	}
	c.Net = fabric.New(c.Gateways[0].K, p.Net, p.Seed^0x5eed)
	for g, gw := range c.Gateways {
		gw.Host = host.New(gw.K, fmt.Sprintf("gw%d", g), c.Net, p.HostP, p.PM, p.NIC)
	}
	for s := 0; s < p.Shards; s++ {
		grp := &PGroup{ID: s, K: c.Eng.NewKernel()}
		for r := 0; r < p.Replicas; r++ {
			h := host.New(grp.K, fmt.Sprintf("s%dr%d", s, r), c.Net, p.HostP, p.PM, p.NIC)
			store, err := rpc.NewStore(h, p.Objects, p.ObjSize)
			if err != nil {
				return nil, err
			}
			if !p.MutantResurrect {
				// Same stale-write guard as the serial cluster (see New);
				// the resurrect mutant disables it to seed the bug class.
				store.VersionAt = 8
			}
			engine := rpc.NewServer(h, store, p.Cfg)
			grp.Replicas = append(grp.Replicas, &Replica{Host: h, Store: store, Engine: engine, alive: true})
		}
		c.Groups = append(c.Groups, grp)
	}
	for _, gw := range c.Gateways {
		gw.pools = make([]*sim.Chan[*replicate.Client], p.Shards)
		gw.clients = make([][]*replicate.Client, p.Shards)
		gw.wrote = make([]map[uint64]*wroteRec, p.Shards)
		for s, grp := range c.Groups {
			gw.pools[s] = sim.NewChan[*replicate.Client](gw.K)
			gw.wrote[s] = make(map[uint64]*wroteRec)
			for i := 0; i < p.PoolSize; i++ {
				var raw []rpc.Client
				for _, rep := range grp.Replicas {
					raw = append(raw, rpc.New(p.Kind, gw.Host, rep.Engine, p.Cfg))
				}
				rc, err := replicate.New(gw.K, p.Policy, raw)
				if err != nil {
					return nil, err
				}
				gw.clients[s] = append(gw.clients[s], rc)
				gw.pools[s].Push(rc)
			}
		}
	}
	if p.Gateways == 1 {
		// Failover support: one dedicated controller connection per shard,
		// plus the membership bookkeeping the controller needs. Built only
		// for the single-gateway topology so multi-gateway deployments keep
		// their pre-failover event stream byte for byte.
		gw := c.Gateways[0]
		for _, grp := range c.Groups {
			var raw []rpc.Client
			for _, rep := range grp.Replicas {
				raw = append(raw, rpc.New(p.Kind, gw.Host, rep.Engine, p.Cfg))
			}
			rc, err := replicate.New(gw.K, p.Policy, raw)
			if err != nil {
				return nil, err
			}
			grp.ctl = rc
			grp.pendingSince = make([]sim.Time, p.Replicas)
			grp.resyncing = make([]bool, p.Replicas)
		}
	}
	return c, nil
}

// Now returns the latest kernel clock in the deployment — the driver's time
// reference at a window barrier (kernels may sit at slightly different
// clocks there; the maximum is monotone across barriers).
func (c *PCluster) Now() sim.Time {
	var t sim.Time
	for _, k := range c.Eng.Kernels() {
		if now := k.Now(); now > t {
			t = now
		}
	}
	return t
}

// CrashReplica fails replica r of shard s: the host loses volatile state (PM
// survives), the engine drops its queue, the store forgets its version
// watermarks. Driver context only, at a window barrier, inside a serialized
// engine span — the crash mutates server-kernel state and flips liveness the
// gateway-side controller polls, which is only sound where a global event
// order exists. The caller owns the restart (RestartReplica at a later
// barrier) and must hold the Serialize token until the cluster is Healthy.
func (c *PCluster) CrashReplica(s, r int) {
	if !c.Eng.Serialized() {
		panic("cluster: CrashReplica outside a serialized engine span")
	}
	rep := c.Groups[s].Replicas[r]
	if !rep.alive {
		return
	}
	rep.alive = false
	rep.crashedAt = c.Groups[s].K.Now()
	rep.Host.Crash()
	rep.Engine.Crash()
	rep.Store.Crash()
}

// RestartReplica brings a crashed replica back. Driver context only, at a
// window barrier at least P.Restart past the crash (the caller models the
// restart latency by choosing the barrier).
func (c *PCluster) RestartReplica(s, r int) {
	rep := c.Groups[s].Replicas[r]
	if rep.alive {
		return
	}
	rep.Host.Restart()
	rep.alive = true
	rep.Restarts++
}

// Healthy reports whether every replica is up and — when a controller is
// installed — readmitted (no down marks, no resync in flight).
func (c *PCluster) Healthy() bool {
	for _, grp := range c.Groups {
		for r, rep := range grp.Replicas {
			if !rep.alive {
				return false
			}
			if grp.ctl != nil && (grp.ctl.Down(r) || grp.resyncing[r]) {
				return false
			}
		}
	}
	return true
}

// EnableAckAudit mirrors Cluster.EnableAckAudit for the partitioned
// deployment: per shard and replica, record the highest payload version each
// replica durably acknowledges per store slot. Gateways == 1 only — the
// audit maps hang off the shard groups but are written by gateway-kernel
// callbacks, which is single-writer only with a single gateway.
func (c *PCluster) EnableAckAudit() {
	if c.P.Gateways != 1 {
		panic("cluster: EnableAckAudit on a partitioned deployment needs Gateways == 1")
	}
	gw := c.Gateways[0]
	for s, grp := range c.Groups {
		grp := grp
		grp.ackAudit = make([]map[uint64]uint32, c.P.Replicas)
		for r := range grp.ackAudit {
			grp.ackAudit[r] = make(map[uint64]uint32)
		}
		tag := func(req *rpc.Request) uint64 {
			if len(req.Payload) < 12 {
				return req.Key << 32
			}
			return req.Key<<32 | uint64(binary.LittleEndian.Uint32(req.Payload[8:]))
		}
		onDurable := func(replica int, t uint64, at sim.Time) {
			slot, ver := t>>32, uint32(t)
			if ver == 0 {
				return // unversioned payload: nothing to audit
			}
			if ver > grp.ackAudit[replica][slot] {
				grp.ackAudit[replica][slot] = ver
			}
		}
		for _, cl := range gw.clients[s] {
			cl.WriteTag, cl.OnDurable = tag, onDurable
		}
	}
}

// AckedVersions returns replica r's durably-acknowledged version record
// (nil unless EnableAckAudit ran).
func (grp *PGroup) AckedVersions(r int) map[uint64]uint32 {
	if grp.ackAudit == nil {
		return nil
	}
	return grp.ackAudit[r]
}

// PMFull totals the replicas' PM-exhaustion backpressure drops — writes that
// could not be homed because the arena ran out. Surfaced as a stat so a
// sizing mistake reads as backpressure, not a panic.
func (c *PCluster) PMFull() int64 {
	var n int64
	for _, grp := range c.Groups {
		for _, rep := range grp.Replicas {
			n += rep.Store.PMFull
		}
	}
	return n
}

// sortedWroteKeys fills grp.keys with gateway 0's recorded key set for this
// shard in ascending order (controller ship iteration; Gateways == 1).
func (c *PCluster) sortedWroteKeys(grp *PGroup) []uint64 {
	wrote := c.Gateways[0].wrote[grp.ID]
	grp.keys = grp.keys[:0]
	for k := range wrote {
		grp.keys = append(grp.keys, k)
	}
	sort.Slice(grp.keys, func(i, j int) bool { return grp.keys[i] < grp.keys[j] })
	return grp.keys
}

func (gw *PGateway) record(shard int, key uint64, ver uint32, payload []byte, at sim.Time) {
	rec := gw.wrote[shard][key]
	if rec == nil {
		rec = &wroteRec{buf: make([]byte, 0, len(payload))}
		gw.wrote[shard][key] = rec
	}
	rec.buf = append(rec.buf[:0], payload...)
	rec.ver = ver
	rec.at = at
}

// acquire checks out a pooled client for shard s via gateway g, yielding to
// a controller's readmission barrier first (see Shard.acquire). Without a
// controller quiesce is never set and this is a plain pool pop.
func (c *PCluster) acquire(p *sim.Proc, g, s int) *replicate.Client {
	for c.Groups[s].quiesce {
		p.Sleep(20 * time.Microsecond)
	}
	return c.Gateways[g].pools[s].Pop(p)
}

// PutOn routes one durable replicated write through gateway g. p must be a
// proc on that gateway's kernel. Without a failover controller the crash-free
// topology needs no retry loop — an error is a bug, not a failover window —
// and the path stays exactly the pre-failover event stream. With a
// controller installed (Gateways == 1), writes retry across failover windows
// the way the serial cluster's Put does.
func (c *PCluster) PutOn(p *sim.Proc, g int, key uint64, ver uint32, payload []byte) error {
	gw := c.Gateways[g]
	s := c.Ring.Shard(key)
	grp := c.Groups[s]
	req := rpc.Request{Op: rpc.OpWrite, Key: keyIndex(key, c.P.Objects), Size: len(payload), Payload: payload}
	if grp.ctl == nil {
		cl := gw.pools[s].Pop(p)
		at, _, err := cl.Write(p, &req)
		gw.pools[s].Push(cl)
		if err != nil {
			return fmt.Errorf("cluster: put key %d via gw %d: %w", key, g, err)
		}
		gw.Puts++
		gw.record(s, key, ver, payload, at)
		return nil
	}
	for attempt := 0; ; attempt++ {
		cl := c.acquire(p, g, s)
		at, _, err := cl.WriteTimeout(p, &req, c.P.Retry*8)
		gw.pools[s].Push(cl)
		if err == nil {
			gw.Puts++
			gw.record(s, key, ver, payload, at)
			return nil
		}
		if attempt >= putAttempts(c.P) {
			return fmt.Errorf("cluster: put key %d via gw %d failed after %d attempts: %w", key, g, attempt+1, err)
		}
		grp.Retries++
		p.Sleep(c.P.Retry)
	}
}

// GetOn routes one read through gateway g (p on that gateway's kernel),
// retrying across failover windows when a controller is installed.
func (c *PCluster) GetOn(p *sim.Proc, g int, key uint64, size int) ([]byte, error) {
	gw := c.Gateways[g]
	s := c.Ring.Shard(key)
	grp := c.Groups[s]
	req := rpc.Request{Op: rpc.OpRead, Key: keyIndex(key, c.P.Objects), Size: size, Payload: empty}
	if grp.ctl == nil {
		cl := gw.pools[s].Pop(p)
		resp, err := cl.Read(p, &req)
		gw.pools[s].Push(cl)
		if err != nil {
			return nil, fmt.Errorf("cluster: get key %d via gw %d: %w", key, g, err)
		}
		gw.Gets++
		return resp.Data, nil
	}
	for attempt := 0; ; attempt++ {
		cl := c.acquire(p, g, s)
		resp, err := cl.ReadTimeout(p, &req, c.P.Retry*8)
		gw.pools[s].Push(cl)
		if err == nil {
			gw.Gets++
			return resp.Data, nil
		}
		if attempt >= putAttempts(c.P) {
			return nil, fmt.Errorf("cluster: get key %d via gw %d failed after %d attempts: %w", key, g, attempt+1, err)
		}
		grp.Retries++
		p.Sleep(c.P.Retry)
	}
}

// Puts and Gets total the per-gateway counters.
func (c *PCluster) Puts() int64 {
	var n int64
	for _, gw := range c.Gateways {
		n += gw.Puts
	}
	return n
}

func (c *PCluster) Gets() int64 {
	var n int64
	for _, gw := range c.Gateways {
		n += gw.Gets
	}
	return n
}

// CheckConsistency verifies, after the engine drains, that the last
// acknowledged write per store slot is resident and byte-identical on every
// replica of its shard. Acknowledged-write records are merged across
// gateways with a deterministic (time, key, gateway) tie-break.
func (c *PCluster) CheckConsistency() error {
	buf := make([]byte, c.P.ObjSize)
	for s, grp := range c.Groups {
		type lastRec struct {
			key uint64
			gw  int
			rec *wroteRec
		}
		lastPerSlot := make(map[uint64]lastRec)
		for g, gw := range c.Gateways {
			keys := make([]uint64, 0, len(gw.wrote[s]))
			for k := range gw.wrote[s] {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, key := range keys {
				rec := gw.wrote[s][key]
				slot := keyIndex(key, c.P.Objects)
				prev, ok := lastPerSlot[slot]
				if !ok || rec.at > prev.rec.at ||
					(rec.at == prev.rec.at && (key > prev.key || (key == prev.key && g > prev.gw))) {
					lastPerSlot[slot] = lastRec{key: key, gw: g, rec: rec}
				}
			}
		}
		slots := make([]uint64, 0, len(lastPerSlot))
		for slot := range lastPerSlot {
			slots = append(slots, slot)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		for _, slot := range slots {
			want := lastPerSlot[slot].rec.buf
			for r, rep := range grp.Replicas {
				if !rep.alive {
					continue
				}
				if !rep.Store.Has(slot) {
					return fmt.Errorf("shard %d replica %d: acked slot %d missing", s, r, slot)
				}
				got := rep.Host.PM.ReadBytesInto(rep.Store.Addr(slot), buf[:len(want)])
				if !bytes.Equal(got, want) {
					return fmt.Errorf("shard %d replica %d: acked slot %d diverged", s, r, slot)
				}
			}
		}
	}
	return nil
}

// PLoadResult aggregates a partitioned load run. Everything in it is a pure
// function of the simulation, so Fingerprint is comparable across worker
// counts.
type PLoadResult struct {
	Samples  []Sample
	End      sim.Time
	Writes   int
	Reads    int
	BadReads int
	Errors   int

	// QueueHWM is the deepest any gateway's open-loop arrival queue got —
	// the boundedness witness for the large-population smoke runs.
	QueueHWM int
	// DistinctClients counts logical clients that issued at least one op
	// (open loop with LogicalClients; else the closed-loop client count).
	DistinctClients int
}

// Throughput returns completed ops per second of simulated time.
func (r *PLoadResult) Throughput() float64 {
	el := r.End.Duration().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(len(r.Samples)) / el
}

// Fingerprint hashes the merged samples and counters; byte-identical runs
// have equal fingerprints.
func (r *PLoadResult) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, s := range r.Samples {
		put(uint64(s.At))
		put(uint64(s.Dur))
		put(uint64(s.Shard))
		if s.Write {
			put(1)
		} else {
			put(0)
		}
	}
	put(uint64(r.End))
	put(uint64(r.Writes))
	put(uint64(r.Reads))
	put(uint64(r.BadReads))
	put(uint64(r.Errors))
	put(uint64(r.QueueHWM))
	put(uint64(r.DistinctClients))
	return h.Sum64()
}

// ownerGateway maps a verified key to the gateway whose client owns it:
// snapWriter gives key k to client k mod Clients, and client c drives
// through gateway c mod Gateways.
func ownerGateway(key uint64, clients, gateways int) int {
	return int(key%uint64(clients)) % gateways
}

// pgwRun is one gateway's share of an in-flight load: samples, counters and
// verification state, all owned by that gateway's kernel until the engine
// drains.
type pgwRun struct {
	samples   []Sample
	writes    int
	reads     int
	badReads  int
	errors    int
	queueHWM  int
	clientSet map[int]struct{}
	issuedVer map[uint64]uint32
	end       sim.Time
	done      bool
}

// PLoadRun is an in-flight partitioned load started by StartLoad: the client
// procs are spawned but the caller owns the engine stepping (Run, or
// RunWindows from a crash-injection driver). Done and Collect may only be
// called at a window barrier.
type PLoadRun struct {
	c    *PCluster
	runs []*pgwRun
}

// Done reports whether every gateway's workload has completed.
func (r *PLoadRun) Done() bool {
	for _, run := range r.runs {
		if !run.done {
			return false
		}
	}
	return true
}

// Collect merges the per-gateway results canonically (by completion time,
// then source gateway). Call after the engine drained — or at a barrier past
// Done when auxiliary procs (a failover controller) keep the engine busy.
func (r *PLoadRun) Collect() *PLoadResult {
	res := &PLoadResult{}
	for _, run := range r.runs {
		res.Samples = append(res.Samples, run.samples...)
		res.Writes += run.writes
		res.Reads += run.reads
		res.BadReads += run.badReads
		res.Errors += run.errors
		res.DistinctClients += len(run.clientSet)
		if run.queueHWM > res.QueueHWM {
			res.QueueHWM = run.queueHWM
		}
		if run.end > res.End {
			res.End = run.end
		}
	}
	// Canonical merge: completion time, then source gateway, then that
	// gateway's completion order — the concatenation above is already in
	// (gateway, local) order, so a stable sort on time is exactly that.
	sort.SliceStable(res.Samples, func(i, j int) bool { return res.Samples[i].At < res.Samples[j].At })
	return res
}

// RunLoad drives the partitioned workload: it spawns per-gateway client
// procs, runs the engine to completion, and merges the per-gateway results
// canonically (by completion time, then gateway). Closed loop and the plain
// open-loop mix are supported; YCSB workload mixes stay on the serial
// cluster.
//
// In open loop, Load.LogicalClients (when > over the worker count) models a
// client population far larger than the service-worker pool: the aggregate
// Poisson arrival process is the superposition of the population's
// individual processes, each arrival is attributed to one logical client,
// and key choice is offset per client so the footprint spreads the way a
// real population's would.
func (c *PCluster) RunLoad(l Load) (*PLoadResult, error) {
	run, err := c.StartLoad(l)
	if err != nil {
		return nil, err
	}
	c.Eng.Run()
	return run.Collect(), nil
}

// StartLoad validates l and spawns the per-gateway client procs without
// stepping the engine — the crash-injection drivers step windows themselves
// (see RunLoad for the one-shot form and the workload semantics).
func (c *PCluster) StartLoad(l Load) (*PLoadRun, error) {
	if l.Clients <= 0 || l.Ops <= 0 {
		return nil, fmt.Errorf("cluster: load needs Clients>0, Ops>0")
	}
	if l.Workload != 0 {
		return nil, fmt.Errorf("cluster: YCSB workloads run on the serial cluster only")
	}
	G := c.P.Gateways
	if l.KeySpace <= 0 {
		l.KeySpace = int64(c.P.Objects)
	}
	if l.Verify {
		if c.P.ObjSize < 16 {
			return nil, fmt.Errorf("cluster: Verify needs ObjSize ≥ 16")
		}
		if int64(l.Clients) < l.KeySpace {
			l.KeySpace -= l.KeySpace % int64(l.Clients)
		}
	}
	if l.Theta == 0 {
		l.Theta = 0.99
	}

	runs := make([]*pgwRun, G)

	for g := 0; g < G; g++ {
		g := g
		gw := c.Gateways[g]
		run := &pgwRun{issuedVer: make(map[uint64]uint32), clientSet: make(map[int]struct{})}
		runs[g] = run
		nextVer := make(map[uint64]uint32)

		// op runs one operation on a proc of this gateway's kernel. Reads of
		// keys owned by another gateway's clients check payload structure
		// only: the issued-version history lives with the owner.
		buf := make(map[int][]byte)
		op := func(wp *sim.Proc, client int, write bool, key uint64, arrivedAt sim.Time) {
			shard := c.Ring.Shard(key)
			if write {
				ver := uint32(1)
				if l.Verify {
					key = snapWriter(key, client, l.Clients, l.KeySpace)
					shard = c.Ring.Shard(key)
					ver = nextVer[key] + 1
					nextVer[key] = ver
					run.issuedVer[key] = ver
				}
				payload := buf[client]
				if payload == nil {
					payload = make([]byte, c.P.ObjSize)
					buf[client] = payload
				}
				if l.Verify {
					fill(payload, key, ver)
				}
				if err := c.PutOn(wp, g, key, ver, payload); err != nil {
					run.errors++
					return
				}
				run.writes++
			} else {
				data, err := c.GetOn(wp, g, key, c.P.ObjSize)
				if err != nil {
					run.errors++
					return
				}
				run.reads++
				if l.Verify {
					maxVer := uint32(math.MaxUint32)
					if ownerGateway(key, l.Clients, G) == g {
						maxVer = run.issuedVer[key]
					}
					if err := checkFill(data, key, maxVer); err != nil {
						run.badReads++
					}
				}
			}
			now := wp.Now()
			run.samples = append(run.samples, Sample{At: now, Dur: now.Sub(arrivedAt), Shard: shard, Write: write})
		}

		wg := sim.NewWaitGroup(gw.K)
		if l.OpenLoop {
			if l.Rate <= 0 {
				return nil, fmt.Errorf("cluster: open loop needs Rate > 0")
			}
			population := l.LogicalClients
			if population < l.Clients {
				population = l.Clients
			}
			popG := population/G + 1 // this gateway's logical clients: g, g+G, ...
			ops := l.Ops / G
			if g < l.Ops%G {
				ops++
			}
			workers := l.Clients / G
			if g < l.Clients%G {
				workers++
			}
			if workers < 1 {
				workers = 1
			}
			type arrival struct {
				at     sim.Time
				client int
				key    uint64
				write  bool
				stop   bool
			}
			queue := sim.NewChan[arrival](gw.K)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				gw.K.Go(fmt.Sprintf("gw%d-worker", g), func(wp *sim.Proc) {
					defer wg.Done()
					for {
						a := queue.Pop(wp)
						if a.stop {
							return
						}
						op(wp, a.client, a.write, a.key, a.at)
					}
				})
			}
			wg.Add(1)
			gw.K.Go(fmt.Sprintf("gw%d-arrivals", g), func(ap *sim.Proc) {
				defer wg.Done()
				rng := sim.NewRand(l.Seed ^ (uint64(g)+1)*0xa11a)
				zipf := ycsb.NewZipfian(rng, l.KeySpace, l.Theta)
				for i := 0; i < ops; i++ {
					gap := time.Duration(rng.Exp(1e9 / (l.Rate / float64(G))))
					ap.Sleep(gap)
					cid := g + G*rng.Intn(popG)
					run.clientSet[cid] = struct{}{}
					// Offset the zipfian draw per logical client so a large
					// population touches a spread of keys, not one hot set.
					key := (uint64(zipf.Scrambled()) + uint64(cid)*7919) % uint64(l.KeySpace)
					queue.Push(arrival{
						at: ap.Now(), client: cid, key: key,
						write: rng.Float64() >= l.ReadFrac,
					})
					if d := queue.Len(); d > run.queueHWM {
						run.queueHWM = d
					}
				}
				for w := 0; w < workers; w++ {
					queue.Push(arrival{stop: true})
				}
			})
		} else {
			// Closed loop: global client ids c with c mod G == g live here,
			// each with a static ops quota (no cross-kernel shared counter).
			for client := g; client < l.Clients; client += G {
				wg.Add(1)
				client := client
				ops := l.Ops / l.Clients
				if client < l.Ops%l.Clients {
					ops++
				}
				run.clientSet[client] = struct{}{}
				gw.K.Go(fmt.Sprintf("gw%d-client%d", g, client), func(wp *sim.Proc) {
					defer wg.Done()
					rng := sim.NewRand(l.Seed ^ (uint64(client)+1)*0x9e3779b97f4a7c15)
					zipf := ycsb.NewZipfian(rng, l.KeySpace, l.Theta)
					for i := 0; i < ops; i++ {
						op(wp, client, rng.Float64() >= l.ReadFrac, uint64(zipf.Scrambled()), wp.Now())
					}
				})
			}
		}
		gw.K.Go(fmt.Sprintf("gw%d-join", g), func(p *sim.Proc) {
			wg.Wait(p)
			run.end = p.Now()
			run.done = true
		})
	}

	return &PLoadRun{c: c, runs: runs}, nil
}
